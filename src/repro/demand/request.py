"""Ride requests and historical trip records (Definition 2 of the paper).

A ride request ``r_i = <t, o, d, e>`` is released at time ``t`` and must
deliver its passengers from origin vertex ``o`` to destination vertex
``d`` before the delivery deadline ``e``.  The paper derives ``e`` from
a *flexible factor* ``rho`` (Eq. 9): ``e = t + rho * cost(o, d)``, and
the pick-up deadline as ``e - cost(o, d)``.  Offline requests carry the
same fields but are invisible to the dispatcher until a taxi passes
their origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class RequestError(ValueError):
    """Raised when a ride request is constructed inconsistently."""


@dataclass(frozen=True, slots=True)
class RideRequest:
    """An immutable ride request.

    Attributes
    ----------
    request_id:
        Unique id within a workload.
    release_time:
        ``t_{r_i}`` in seconds since the scenario start.
    origin, destination:
        Road-network vertex ids ``o_{r_i}`` and ``d_{r_i}``.
    deadline:
        Delivery deadline ``e_{r_i}`` in seconds.
    direct_cost:
        Shortest-path travel cost ``cost(o, d)`` in seconds, fixed at
        workload-construction time (traffic is assumed stable).
    num_passengers:
        Riders travelling together under this request.
    offline:
        ``True`` for a street-hailing request ``\\bar{r}_i`` that the
        dispatcher cannot see until a taxi encounters it.
    """

    request_id: int
    release_time: float
    origin: int
    destination: int
    deadline: float
    direct_cost: float
    num_passengers: int = 1
    offline: bool = False

    def __post_init__(self) -> None:
        if self.release_time < 0:
            raise RequestError("release_time must be non-negative")
        if self.direct_cost < 0:
            raise RequestError("direct_cost must be non-negative")
        if self.deadline < self.release_time + self.direct_cost:
            raise RequestError(
                "deadline is infeasible: earlier than release_time + direct_cost"
            )
        if self.num_passengers < 1:
            raise RequestError("a request carries at least one passenger")

    @property
    def pickup_deadline(self) -> float:
        """Latest pick-up time ``e - cost(o, d)`` (Section III-A)."""
        return self.deadline - self.direct_cost

    @property
    def max_wait(self) -> float:
        """Waiting-time budget ``Delta t = e - cost(o, d) - t`` (Eq. 2)."""
        return self.pickup_deadline - self.release_time

    @property
    def slack(self) -> float:
        """Total tolerable extra travel time, ``e - t - cost(o, d)``."""
        return self.deadline - self.release_time - self.direct_cost

    @classmethod
    def from_flexible_factor(
        cls,
        request_id: int,
        release_time: float,
        origin: int,
        destination: int,
        direct_cost: float,
        rho: float = 1.3,
        num_passengers: int = 1,
        offline: bool = False,
    ) -> "RideRequest":
        """Build a request whose deadline follows Eq. 9: ``e = t + rho * cost``."""
        if rho < 1.0:
            raise RequestError("the flexible factor rho must be >= 1")
        return cls(
            request_id=request_id,
            release_time=release_time,
            origin=origin,
            destination=destination,
            deadline=release_time + rho * direct_cost,
            direct_cost=direct_cost,
            num_passengers=num_passengers,
            offline=offline,
        )


@dataclass(frozen=True, slots=True)
class TripRecord:
    """One historical taxi transaction from the (synthetic) trace.

    Mirrors the fields of the Didi GAIA records the paper mines:
    transaction id, taxi id, release time, pick-up and drop-off
    locations (already map-matched to road vertices).
    """

    trip_id: int
    taxi_id: int
    release_time: float
    origin: int
    destination: int


@dataclass(slots=True)
class ServedTrip:
    """Outcome of a served request, recorded by the simulator.

    Attributes are the raw ingredients of the paper's metrics: response
    time (matching latency), waiting time (pick-up minus release),
    detour time (shared travel minus direct travel), and the distances
    needed by the payment model.
    """

    request: RideRequest
    taxi_id: int
    assign_time: float
    pickup_time: float = field(default=float("nan"))
    dropoff_time: float = field(default=float("nan"))
    shared_travel_cost: float = field(default=float("nan"))

    @property
    def waiting_time(self) -> float:
        """Pick-up time minus release time, in seconds."""
        return self.pickup_time - self.request.release_time

    @property
    def detour_time(self) -> float:
        """Extra on-board travel versus the direct shortest path, >= 0."""
        return max(0.0, self.shared_travel_cost - self.request.direct_cost)

    @property
    def completed(self) -> bool:
        """Whether the passenger has been dropped off."""
        return self.dropoff_time == self.dropoff_time  # not NaN
