"""Trip-dataset container and the statistics of the paper's Fig. 5.

A :class:`TripDataset` is a columnar store of historical taxi
transactions (the synthetic stand-in for the Didi GAIA trace).  It
supports time-window slicing — the paper carves the 8–9 a.m. workday
hour and the 10–11 a.m. weekend hour out of the trace — conversion to
ride-request workloads, and the descriptive statistics reported in
Fig. 5: hourly taxi-utilisation ratios and the trip travel-time
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.shortest_path import ShortestPathEngine
from .request import RideRequest, TripRecord


@dataclass(frozen=True)
class TripDataset:
    """Columnar historical trips: release time, origin, destination, taxi."""

    release_times: np.ndarray
    origins: np.ndarray
    destinations: np.ndarray
    taxi_ids: np.ndarray

    def __post_init__(self) -> None:
        m = self.release_times.shape[0]
        for name in ("origins", "destinations", "taxi_ids"):
            if getattr(self, name).shape != (m,):
                raise ValueError(f"{name} must have the same length as release_times")
        if m and np.any(np.diff(self.release_times) < 0):
            order = np.argsort(self.release_times, kind="stable")
            object.__setattr__(self, "release_times", self.release_times[order])
            object.__setattr__(self, "origins", self.origins[order])
            object.__setattr__(self, "destinations", self.destinations[order])
            object.__setattr__(self, "taxi_ids", self.taxi_ids[order])

    def __len__(self) -> int:
        return int(self.release_times.shape[0])

    # ------------------------------------------------------------------
    # slicing and views
    # ------------------------------------------------------------------
    def window(self, start_s: float, end_s: float) -> "TripDataset":
        """Trips with ``start_s <= release_time < end_s``."""
        mask = (self.release_times >= start_s) & (self.release_times < end_s)
        return TripDataset(
            release_times=self.release_times[mask],
            origins=self.origins[mask],
            destinations=self.destinations[mask],
            taxi_ids=self.taxi_ids[mask],
        )

    def exclude_window(self, start_s: float, end_s: float) -> "TripDataset":
        """Complement of :meth:`window`; the paper uses the *rest* of the
        trace for partitioning and probability mining."""
        mask = (self.release_times < start_s) | (self.release_times >= end_s)
        return TripDataset(
            release_times=self.release_times[mask],
            origins=self.origins[mask],
            destinations=self.destinations[mask],
            taxi_ids=self.taxi_ids[mask],
        )

    def od_pairs(self) -> np.ndarray:
        """``(m, 2)`` array of (origin, destination) for transition mining."""
        return np.stack([self.origins, self.destinations], axis=1)

    def records(self) -> list[TripRecord]:
        """Materialise the rows as :class:`TripRecord` objects."""
        return [
            TripRecord(
                trip_id=i,
                taxi_id=int(self.taxi_ids[i]),
                release_time=float(self.release_times[i]),
                origin=int(self.origins[i]),
                destination=int(self.destinations[i]),
            )
            for i in range(len(self))
        ]

    def concat(self, other: "TripDataset") -> "TripDataset":
        """Concatenate two datasets (rows are re-sorted by release time)."""
        return TripDataset(
            release_times=np.concatenate([self.release_times, other.release_times]),
            origins=np.concatenate([self.origins, other.origins]),
            destinations=np.concatenate([self.destinations, other.destinations]),
            taxi_ids=np.concatenate([self.taxi_ids, other.taxi_ids]),
        )

    # ------------------------------------------------------------------
    # request workloads
    # ------------------------------------------------------------------
    def to_requests(
        self,
        engine: ShortestPathEngine,
        rho: float = 1.3,
        offline_count: int = 0,
        time_origin: float | None = None,
        seed: int = 0,
    ) -> list[RideRequest]:
        """Convert trips into a ride-request workload.

        Parameters
        ----------
        engine:
            Shortest-path engine used to fix ``cost(o, d)`` per request.
        rho:
            Flexible factor of Eq. 9 setting the delivery deadline.
        offline_count:
            Number of trips (sampled uniformly) marked as *offline*
            street-hailing requests, as in the paper's non-peak setup
            where 5,000 of 15,480 requests are hidden from the system.
        time_origin:
            Subtracted from release times so the workload starts near 0;
            defaults to the first trip's release time.
        seed:
            Seed for the offline sampling.

        Trips whose destination is unreachable from their origin are
        dropped (they cannot be served by any scheme).
        """
        m = len(self)
        if offline_count > m:
            raise ValueError("offline_count exceeds the number of trips")
        if time_origin is None:
            time_origin = float(self.release_times[0]) if m else 0.0
        rng = np.random.default_rng(seed)
        offline_ids = set(
            rng.choice(m, size=offline_count, replace=False).tolist()
        ) if offline_count else set()

        requests = []
        rid = 0
        for i in range(m):
            o = int(self.origins[i])
            d = int(self.destinations[i])
            cost = engine.cost(o, d)
            if not np.isfinite(cost) or cost <= 0.0:
                continue
            requests.append(
                RideRequest.from_flexible_factor(
                    request_id=rid,
                    release_time=float(self.release_times[i]) - time_origin,
                    origin=o,
                    destination=d,
                    direct_cost=float(cost),
                    rho=rho,
                    offline=i in offline_ids,
                )
            )
            rid += 1
        return requests

    # ------------------------------------------------------------------
    # Fig. 5 statistics
    # ------------------------------------------------------------------
    def hourly_counts(self) -> dict[int, int]:
        """Number of trips per absolute hour index."""
        if not len(self):
            return {}
        hours = (self.release_times // 3600.0).astype(np.int64)
        uniq, counts = np.unique(hours, return_counts=True)
        return {int(h): int(c) for h, c in zip(uniq, counts)}

    def busiest_hour(self) -> tuple[int, int]:
        """``(hour_index, count)`` of the busiest hour in the dataset."""
        counts = self.hourly_counts()
        if not counts:
            raise ValueError("empty dataset has no busiest hour")
        hour = max(counts, key=counts.get)
        return hour, counts[hour]

    def travel_time_distribution(
        self,
        engine: ShortestPathEngine,
        percentiles: tuple[float, ...] = (50.0, 90.0),
    ) -> dict[float, float]:
        """Percentiles of shortest-path trip travel times, in seconds.

        Reproduces Fig. 5(b): the paper reports a 15-minute median and a
        30-minute 90th percentile for the GAIA trips.
        """
        times = []
        for o, d in zip(self.origins, self.destinations):
            c = engine.cost(int(o), int(d))
            if np.isfinite(c):
                times.append(c)
        if not times:
            return {p: float("nan") for p in percentiles}
        arr = np.asarray(times)
        return {p: float(np.percentile(arr, p)) for p in percentiles}

    def hourly_utilization(self, engine: ShortestPathEngine) -> dict[int, float]:
        """Average per-taxi busy-time share for each hour (Fig. 5(a)).

        A taxi's utilisation in an hour is the share of that hour it
        spends serving trips, approximating occupied time by each trip's
        shortest-path travel time clipped to the hour.
        """
        if not len(self):
            return {}
        taxis = np.unique(self.taxi_ids)
        busy: dict[int, float] = {}
        for i in range(len(self)):
            cost = engine.cost(int(self.origins[i]), int(self.destinations[i]))
            if not np.isfinite(cost):
                continue
            start = float(self.release_times[i])
            end = start + float(cost)
            h = int(start // 3600)
            while start < end:
                hour_end = (h + 1) * 3600.0
                busy[h] = busy.get(h, 0.0) + min(end, hour_end) - start
                start = hour_end
                h += 1
        denom = max(len(taxis), 1) * 3600.0
        return {h: min(1.0, b / denom) for h, b in sorted(busy.items())}
