"""Experiment harness regenerating every table and figure of the paper."""

from .ablations import ALL_ABLATIONS
from .analysis import fleet_profile, run_report, sharing_profile, waiting_by_trip_length
from .figures import ALL_EXPERIMENTS
from .reporting import ExperimentResult
from .runner import BenchScale, RunKey, bench_scale, clear_cache, run, run_simple

__all__ = [
    "ALL_ABLATIONS",
    "ALL_EXPERIMENTS",
    "fleet_profile",
    "run_report",
    "sharing_profile",
    "waiting_by_trip_length",
    "BenchScale",
    "ExperimentResult",
    "RunKey",
    "bench_scale",
    "clear_cache",
    "run",
    "run_simple",
]
