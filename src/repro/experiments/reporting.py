"""Tabular reporting for experiment results.

Each figure/table function returns an :class:`ExperimentResult`: a
named grid of series (one per scheme or setting) over an x-axis (fleet
size, parameter value, ...).  ``print`` renders the same rows the
paper's plots show, so a benchmark run reads like the evaluation
section.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """A named table: one row per series, one column per x value."""

    title: str
    x_label: str
    x_values: list
    y_label: str
    series: dict[str, list] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_series(self, name: str, values: list) -> None:
        """Attach one series; length must match the x axis."""
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(self.x_values)} x points"
            )
        self.series[name] = list(values)

    def value(self, series: str, x) -> float:
        """Single cell lookup by series name and x value."""
        return self.series[series][self.x_values.index(x)]

    def to_rows(self) -> list[list]:
        """Header row plus one row per series."""
        header = [f"{self.y_label} \\ {self.x_label}"] + [str(x) for x in self.x_values]
        rows = [header]
        for name, values in self.series.items():
            rows.append([name] + [_fmt(v) for v in values])
        return rows

    def render(self) -> str:
        """Fixed-width text table with title and notes."""
        rows = self.to_rows()
        widths = [max(len(str(r[i])) for r in rows) for i in range(len(rows[0]))]
        lines = [self.title, "=" * len(self.title)]
        for i, row in enumerate(rows):
            lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table."""
        print()
        print(self.render())


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)
