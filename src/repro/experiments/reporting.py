"""Tabular reporting for experiment results.

Each figure/table function returns an :class:`ExperimentResult`: a
named grid of series (one per scheme or setting) over an x-axis (fleet
size, parameter value, ...).  ``print`` renders the same rows the
paper's plots show, so a benchmark run reads like the evaluation
section.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """A named table: one row per series, one column per x value."""

    title: str
    x_label: str
    x_values: list
    y_label: str
    series: dict[str, list] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_series(self, name: str, values: list) -> None:
        """Attach one series; length must match the x axis."""
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(self.x_values)} x points"
            )
        self.series[name] = list(values)

    def value(self, series: str, x) -> float:
        """Single cell lookup by series name and x value."""
        return self.series[series][self.x_values.index(x)]

    def to_rows(self) -> list[list]:
        """Header row plus one row per series."""
        header = [f"{self.y_label} \\ {self.x_label}"] + [str(x) for x in self.x_values]
        rows = [header]
        for name, values in self.series.items():
            rows.append([name] + [_fmt(v) for v in values])
        return rows

    def render(self) -> str:
        """Fixed-width text table with title and notes."""
        rows = self.to_rows()
        widths = [max(len(str(r[i])) for r in rows) for i in range(len(rows[0]))]
        lines = [self.title, "=" * len(self.title)]
        for i, row in enumerate(rows):
            lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table."""
        print()
        print(self.render())


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


#: Counters worth surfacing in the observability table's notes, with
#: human-readable labels (see docs/OBSERVABILITY.md for the vocabulary).
_HEADLINE_COUNTERS = (
    ("match.candidates_found", "candidate taxis found"),
    ("match.insertions_evaluated", "insertion instances evaluated"),
    ("match.routes_planned", "candidate routes planned"),
    ("sim.encounters_scanned", "offline encounters scanned"),
    ("sim.taxi_advances", "taxi movement notifications"),
    ("sim.stop_notifications", "with stops fired (index refreshes)"),
    ("route.fallbacks_total", "partition-filter fallbacks"),
    ("index.partition_entries", "partition index entries (end)"),
    ("index.clusters", "mobility clusters (end)"),
)


def observability_table(metrics) -> ExperimentResult | None:
    """Per-stage dispatch timing table from one run's metrics.

    One column per recorded stage (``sim.dispatch``,
    ``match.candidates``, ``match.insertion``, ``match.planning``,
    ``route.basic``, ``route.probabilistic``); rows are call counts,
    total and mean wall time.  Counters (cache hit rate, insertion
    instances, encounter scans) land in the notes.  Returns ``None``
    when the run carried no instrumentation.
    """
    if not metrics.stages:
        return None
    names = sorted(metrics.stages)
    result = ExperimentResult(
        title=f"Dispatch stage breakdown — {metrics.scheme_name}",
        x_label="stage",
        x_values=names,
        y_label="metric",
    )
    result.add_series("calls", [metrics.stages[n]["count"] for n in names])
    result.add_series(
        "total_ms", [1000.0 * metrics.stages[n]["total_s"] for n in names]
    )
    result.add_series(
        "mean_us", [1e6 * metrics.stages[n]["mean_s"] for n in names]
    )
    hits = metrics.counters.get("spe.cache_hits", 0)
    misses = metrics.counters.get("spe.cache_misses", 0)
    if hits or misses:
        result.notes.append(
            f"shortest-path cache: {hits} hits / {misses} misses "
            f"(hit rate {metrics.lazy_cache_hit_rate:.4f})"
        )
    for key, label in _HEADLINE_COUNTERS:
        if key in metrics.counters:
            result.notes.append(f"{label}: {metrics.counters[key]}")
    return result
