"""Ablation experiments for mT-Share's design choices.

These go beyond the paper's own sweeps: they isolate individual design
decisions DESIGN.md calls out — the searching-range policy (static
``gamma`` versus the Eq. 2 adaptive radius), the probability-vs-detour
steering strength the paper defers to future work, and the idle
demand-seeking cruising of the non-peak mode — so a downstream user can
see what each buys.
"""

from __future__ import annotations

from dataclasses import replace

from .reporting import ExperimentResult
from .runner import BenchScale, RunKey, bench_scale, run


def ablation_adaptive_gamma(scale: BenchScale | None = None) -> ExperimentResult:
    """mT-Share with Eq. 2's adaptive searching range versus the static one."""
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Ablation: mT-Share searching-range policy (peak)",
        x_label="metric",
        x_values=["served", "response_ms", "candidates"],
        y_label="policy",
    )
    for label, adaptive in (("adaptive (Eq. 2)", True), ("static gamma", False)):
        metrics = run(
            RunKey(
                spec=scale.peak,
                scheme="mt-share",
                num_taxis=scale.default_taxis,
                config_overrides=(("mtshare_adaptive_gamma", adaptive),),
            )
        )
        result.add_series(
            label,
            [metrics.served, round(metrics.avg_response_ms, 3),
             round(metrics.avg_candidates, 2)],
        )
    return result


def ablation_steering(scale: BenchScale | None = None,
                      strengths_m: tuple[float, ...] = (0.0, 120.0, 400.0)) -> ExperimentResult:
    """The probability-vs-detour trade-off of probabilistic routing.

    ``prob_steering_m = 0`` reduces fine-grained routing to shortest
    paths (corridor choice still applies); larger values buy more
    offline encounters at the cost of extra detour, the exact trade-off
    the paper leaves to future work.
    """
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Ablation: probabilistic-routing steering strength (non-peak)",
        x_label="steering_m",
        x_values=list(strengths_m),
        y_label="value",
    )
    offline = []
    total = []
    detour = []
    for strength in strengths_m:
        metrics = run(
            RunKey(
                spec=scale.nonpeak,
                scheme="mt-share-pro",
                num_taxis=scale.default_taxis,
                config_overrides=(("prob_steering_m", float(strength)),),
            )
        )
        offline.append(metrics.served_offline)
        total.append(metrics.served)
        detour.append(round(metrics.avg_detour_min, 2))
    result.add_series("served offline", offline)
    result.add_series("served total", total)
    result.add_series("detour_min", detour)
    return result


def ablation_cruising(scale: BenchScale | None = None) -> ExperimentResult:
    """Idle demand-seeking cruising on versus off (mT-Share_pro, non-peak)."""
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Ablation: idle cruising (mT-Share_pro, non-peak)",
        x_label="metric",
        x_values=["served_online", "served_offline", "served", "waiting_min"],
        y_label="policy",
    )
    for label, enabled in (("cruising on", True), ("cruising off", False)):
        metrics = run(
            RunKey(
                spec=scale.nonpeak,
                scheme="mt-share-pro",
                num_taxis=scale.default_taxis,
                config_overrides=(("enable_cruising", enabled),),
            )
        )
        result.add_series(
            label,
            [metrics.served_online, metrics.served_offline, metrics.served,
             round(metrics.avg_waiting_min, 2)],
        )
    return result


def ablation_redispatch(scale: BenchScale | None = None) -> ExperimentResult:
    """Offline-encounter redispatch on versus off.

    The paper's offline pipeline lets the server dispatch *another* taxi
    when the encountering one cannot carry the hailer; this isolates how
    much of the offline service that second chance provides.
    """
    from ..core.payment import PaymentModel
    from ..sim.engine import Simulator
    from ..sim.scenario import get_scenario

    scale = scale or bench_scale()
    scenario = get_scenario(scale.nonpeak)
    requests = scenario.requests()
    result = ExperimentResult(
        title="Ablation: offline-encounter redispatch (mT-Share_pro, non-peak)",
        x_label="metric",
        x_values=["served_offline", "served"],
        y_label="policy",
    )
    for label, redispatch in (("redispatch on", True), ("redispatch off", False)):
        metrics = Simulator(
            scenario.make_scheme("mt-share-pro"),
            scenario.make_fleet(scale.default_taxis),
            requests,
            payment=PaymentModel(),
            redispatch_encounters=redispatch,
        ).run()
        result.add_series(label, [metrics.served_offline, metrics.served])
    return result


def ablation_seed_robustness(scale: BenchScale | None = None,
                             seeds: tuple[int, ...] = (7, 11, 13)) -> ExperimentResult:
    """Headline peak metrics across scenario seeds.

    Each seed is a fresh synthetic substrate — network perturbation,
    demand zones, trace, partitions — so this checks the comparative
    results are not an artifact of one draw.  It is also the most
    preprocessing-heavy sweep in the suite (every seed rebuilds all
    scenario artifacts), which makes it the showcase workload for the
    artifact store and the parallel executor.
    """
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Ablation: scenario-seed robustness (mT-Share, peak)",
        x_label="spec_seed",
        x_values=list(seeds),
        y_label="value",
    )
    served = []
    waiting = []
    detour = []
    for seed in seeds:
        metrics = run(
            RunKey(
                spec=replace(scale.peak, seed=seed),
                scheme="mt-share",
                num_taxis=scale.default_taxis,
            )
        )
        served.append(metrics.served)
        waiting.append(round(metrics.avg_waiting_min, 2))
        detour.append(round(metrics.avg_detour_min, 2))
    result.add_series("served", served)
    result.add_series("waiting_min", waiting)
    result.add_series("detour_min", detour)
    return result


def ablation_window_size(scale: BenchScale | None = None,
                         windows: tuple[float, ...] = (0.0, 10.0, 30.0, 60.0, 120.0)
                         ) -> ExperimentResult:
    """``window-lap`` service quality and dispatch cost versus ``W``.

    ``W = 0`` degenerates to single-request windows and reproduces the
    greedy mT-Share decisions exactly (the PR 8 equivalence gate); the
    wider the window, the more requests each linear assignment batches
    — amortising matrix fill across the window — at the price of up to
    ``W`` seconds of added matching delay per request.
    """
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Ablation: window-lap dispatch-window length (peak)",
        x_label="window_s",
        x_values=[int(w) for w in windows],
        y_label="value",
    )
    served = []
    waiting = []
    dispatch_ms = []
    rolled = []
    for w in windows:
        metrics = run(
            RunKey(
                spec=scale.peak,
                scheme="window-lap",
                num_taxis=scale.default_taxis,
                config_overrides=(("dispatch_window_s", float(w)),),
            )
        )
        served.append(metrics.served)
        waiting.append(round(metrics.avg_waiting_min, 2))
        stage = metrics.stages.get("sim.dispatch", {})
        per_request = stage.get("total_s", 0.0) / max(metrics.num_online, 1)
        dispatch_ms.append(round(1000.0 * per_request, 3))
        rolled.append(metrics.counters.get("window.rolled", 0))
    result.add_series("served", served)
    result.add_series("waiting_min", waiting)
    result.add_series("dispatch_ms_per_request", dispatch_ms)
    result.add_series("rolled", rolled)
    return result


def ablation_rebalance_imbalance(scale: BenchScale | None = None) -> ExperimentResult:
    """Proactive idle-taxi rebalancing under the commute surge (peak).

    The peak scenario's evaluation window *is* the morning one-way
    surge (workday hour 8): demand concentrates in a few origin zones
    while drop-offs strand the fleet elsewhere, so a purely reactive
    dispatcher starves the surge cells — ROADMAP item 1.  The fleet is
    deliberately tight (half the default) to make the supply/demand
    imbalance bite; the rebalancer then steers surplus idle taxis
    toward predicted-deficit partitions ahead of the surge.  Compare
    served rate and response/waiting with the identical run without
    repositioning.
    """
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Ablation: proactive idle-taxi rebalancing (mT-Share, commute surge)",
        x_label="metric",
        x_values=["served", "served_rate", "response_ms", "waiting_min", "moves"],
        y_label="policy",
    )
    num_taxis = max(scale.default_taxis // 2, 10)
    for label, spec_str in (("rebalance on", "on"), ("rebalance off", None)):
        metrics = run(
            RunKey(
                spec=scale.peak,
                scheme="mt-share",
                num_taxis=num_taxis,
                rebalance=spec_str,
            )
        )
        served_rate = metrics.served / max(metrics.num_requests, 1)
        result.add_series(
            label,
            [metrics.served, round(served_rate, 4),
             round(metrics.avg_response_ms, 3),
             round(metrics.avg_waiting_min, 2),
             metrics.counters.get("rebalance.moves", 0)],
        )
    return result


ALL_ABLATIONS = {
    "adaptive_gamma": ablation_adaptive_gamma,
    "steering": ablation_steering,
    "cruising": ablation_cruising,
    "redispatch": ablation_redispatch,
    "seed_robustness": ablation_seed_robustness,
    "window_size": ablation_window_size,
    "rebalance_imbalance": ablation_rebalance_imbalance,
}
