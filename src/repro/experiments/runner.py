"""Experiment runner: cached simulation runs for the benchmark harness.

Every figure/table of the paper's evaluation is regenerated from the
same primitive — *run scheme S on scenario X with parameters P* — and
several figures share identical runs (Figs. 6-9 and Table III all come
from the peak fleet sweep).  The runner memoises completed runs by
their full parameter key so each configuration is simulated once per
process no matter how many benchmarks consume it.

Two multi-run facilities sit on top of the primitive:

* a *planning mode* (:func:`collect_keys`) that dry-runs an experiment
  function and records the :class:`RunKey`\\ s it would simulate, and
* a *parallel sweep executor* (:func:`run_many`) that executes a key
  list across spawned worker processes, warming the artifact store in
  the parent first so workers memory-map shared preprocessing instead
  of rebuilding it.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context

from .. import artifacts
from ..core.payment import PaymentModel
from ..sim.engine import Simulator
from ..sim.metrics import SimulationMetrics
from ..sim.scenario import (
    ScenarioSpec,
    clear_scenarios,
    get_scenario,
    nonpeak_spec,
    peak_spec,
    scenario_cache_stats,
)

#: Environment variable selecting the default worker count for sweeps.
WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True, slots=True)
class RunKey:
    """Everything that determines a simulation run's outcome."""

    spec: ScenarioSpec
    scheme: str
    num_taxis: int
    capacity: int = 3
    rho: float = 1.3
    fleet_seed: int = 0
    partition_method: str = "bipartite"
    config_overrides: tuple = ()
    offline_count: int | None = None
    probabilistic: bool = False
    #: ``--rebalance`` spec string for proactive idle-taxi repositioning
    #: (``None``/"off" leaves the run on the pre-rebalancing code path).
    rebalance: str | None = None


_CACHE: dict[RunKey, SimulationMetrics] = {}

#: When not ``None``, :func:`run` records keys here instead of simulating.
_PLANNING: list[RunKey] | None = None


def clear_cache() -> None:
    """Forget all memoised runs *and* cached scenarios (test isolation).

    Clearing only the run cache used to leave built scenarios (and the
    RNG state inside their demand generators) resident, so a test that
    cleared "the cache" could still observe state from earlier tests.
    Both layers go together now.
    """
    _CACHE.clear()
    _WORKER_SNAPSHOTS.clear()
    clear_scenarios()


def collect_keys(fn: Callable, *args, **kwargs) -> list[RunKey]:
    """Dry-run ``fn`` and return the unique RunKeys it would simulate.

    While planning, :func:`run` records its key and returns an empty
    :class:`SimulationMetrics` (all-zero metrics are safe for the
    result-shaping code in the experiment functions); already-memoised
    keys are recorded too, so the caller sees the experiment's full
    footprint.
    """
    global _PLANNING
    if _PLANNING is not None:
        raise RuntimeError("collect_keys cannot be nested")
    _PLANNING = []
    try:
        fn(*args, **kwargs)
        return list(dict.fromkeys(_PLANNING))
    finally:
        _PLANNING = None


def run(key: RunKey) -> SimulationMetrics:
    """Execute (or recall) one simulation run."""
    if _PLANNING is not None:
        _PLANNING.append(key)
        return SimulationMetrics()
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    scenario = get_scenario(key.spec)
    overrides = dict(key.config_overrides)
    overrides.setdefault("rho", key.rho)
    overrides.setdefault("capacity", key.capacity)
    config = scenario.default_config(**overrides)
    scheme = scenario.make_scheme(
        key.scheme,
        config=config,
        partition_method=key.partition_method,
        probabilistic=key.probabilistic,
    )
    requests = scenario.requests(rho=key.rho, offline_count=key.offline_count)
    fleet = scenario.make_fleet(key.num_taxis, capacity=key.capacity, seed=key.fleet_seed)
    metrics = Simulator(
        scheme,
        fleet,
        requests,
        payment=PaymentModel(beta=config.beta, eta=config.eta),
        rebalance=scenario.rebalance_policy(key.rebalance, config),
    ).run()
    _CACHE[key] = metrics
    return metrics


def run_simple(
    spec: ScenarioSpec,
    scheme: str,
    num_taxis: int,
    **kwargs,
) -> SimulationMetrics:
    """Convenience wrapper building the :class:`RunKey` from kwargs."""
    overrides = kwargs.pop("config_overrides", {})
    if isinstance(overrides, dict):
        overrides = tuple(sorted(overrides.items()))
    return run(RunKey(spec=spec, scheme=scheme, num_taxis=num_taxis,
                      config_overrides=overrides, **kwargs))


# ----------------------------------------------------------------------
# parallel sweep executor
# ----------------------------------------------------------------------
def default_workers() -> int:
    """Worker count for sweeps: :data:`WORKERS_ENV`, else 1 (sequential)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return 1


def _warm_store(keys: Sequence[RunKey]) -> None:
    """Persist every artifact the keys need before spawning workers.

    Done once in the parent so N workers memory-map one set of stored
    matrices instead of racing to build N copies.  No-op when the
    artifact store is disabled (workers then rebuild independently).
    """
    if artifacts.get_store() is None:
        return
    warmed: set[tuple] = set()
    for key in keys:
        kappa = dict(key.config_overrides).get("num_partitions", key.spec.num_partitions)
        sig = (key.spec, key.partition_method, kappa)
        if sig in warmed:
            continue
        warmed.add(sig)
        scenario = get_scenario(key.spec)
        scenario.partitioning(key.partition_method, kappa)
        scenario.landmark_graph(key.partition_method, kappa)


def _worker_run(key: RunKey) -> tuple[SimulationMetrics, dict]:
    """Pool entry point: one simulation plus the worker's observability."""
    metrics = run(key)
    return metrics, {
        "artifact_store": artifacts.stats(),
        "scenario_cache": scenario_cache_stats(),
    }


#: Observability snapshots reported by sweep workers, merged per sweep.
_WORKER_SNAPSHOTS: list[dict] = []


def run_many(
    keys: Iterable[RunKey],
    workers: int | None = None,
) -> list[SimulationMetrics]:
    """Execute many runs, optionally across spawned worker processes.

    Results come back in input order regardless of completion order,
    and land in the in-process memo cache exactly as sequential
    :func:`run` calls would, so downstream experiment functions recall
    them for free.  ``workers`` defaults to :func:`default_workers`
    (the ``REPRO_WORKERS`` environment variable).

    Workers are spawned (not forked) so each runs the same cold-start
    path on every platform; the parent warms the artifact store first,
    which is what makes the fan-out profitable.
    """
    keys = list(keys)
    if workers is None:
        workers = default_workers()
    todo = list(dict.fromkeys(k for k in keys if k not in _CACHE))
    if workers <= 1 or len(todo) <= 1:
        return [run(key) for key in keys]
    _warm_store(todo)
    ctx = get_context("spawn")
    with ProcessPoolExecutor(max_workers=min(workers, len(todo)), mp_context=ctx) as pool:
        for key, (metrics, snapshot) in zip(
            todo, pool.map(_worker_run, todo, chunksize=1)
        ):
            _CACHE[key] = metrics
            _WORKER_SNAPSHOTS.append(snapshot)
    return [run(key) for key in keys]


def collect_observability() -> dict:
    """Aggregate stage timings and counters across all memoised runs.

    The benchmark harness attaches this to each benchmark's
    ``extra_info`` so the JSON output carries per-stage dispatch
    timings and the lazy-cache hit rate alongside the wall times.
    Stages merge by summing counts/totals and widening min/max;
    counters sum.  Returns ``{"runs": 0}`` when nothing has run yet.
    """
    stages: dict[str, dict[str, float]] = {}
    counters: dict[str, int] = {}
    runs = 0
    for metrics in _CACHE.values():
        if not metrics.stages and not metrics.counters:
            continue
        runs += 1
        for name, stat in metrics.stages.items():
            agg = stages.get(name)
            if agg is None:
                stages[name] = dict(stat)
            else:
                agg["count"] += stat["count"]
                agg["total_s"] += stat["total_s"]
                agg["min_s"] = min(agg["min_s"], stat["min_s"])
                agg["max_s"] = max(agg["max_s"], stat["max_s"])
        for name, value in metrics.counters.items():
            counters[name] = counters.get(name, 0) + value
    for agg in stages.values():
        agg["mean_s"] = agg["total_s"] / agg["count"] if agg["count"] else 0.0
    hits = counters.get("spe.cache_hits", 0)
    misses = counters.get("spe.cache_misses", 0)
    out: dict = {"runs": runs, "stages": stages, "counters": counters}
    if hits or misses:
        out["lazy_cache_hit_rate"] = hits / (hits + misses)
    out["scenario_cache"] = scenario_cache_stats()
    out["artifact_store"] = artifacts.stats()
    if _WORKER_SNAPSHOTS:
        out["workers"] = list(_WORKER_SNAPSHOTS)
    return out


# ----------------------------------------------------------------------
# benchmark scale presets
# ----------------------------------------------------------------------
#: Environment variable selecting the benchmark scale.
SCALE_ENV = "REPRO_BENCH_SCALE"


@dataclass(frozen=True, slots=True)
class BenchScale:
    """Benchmark sizing: scenario specs and fleet sweeps."""

    name: str
    peak: ScenarioSpec
    nonpeak: ScenarioSpec
    taxi_counts: tuple[int, ...]
    default_taxis: int


def bench_scale() -> BenchScale:
    """The active benchmark scale (``quick`` unless overridden).

    ``REPRO_BENCH_SCALE=full`` runs the paper-shaped sweeps (six fleet
    sizes, the full default scenario); ``quick`` (default) trims the
    sweep so the whole benchmark suite finishes in a few minutes.
    """
    name = os.environ.get(SCALE_ENV, "quick").lower()
    if name == "full":
        return BenchScale(
            name="full",
            peak=peak_spec(),
            nonpeak=nonpeak_spec(),
            taxi_counts=(50, 100, 150, 200, 250, 300),
            default_taxis=200,
        )
    if name == "quick":
        return BenchScale(
            name="quick",
            peak=peak_spec(),
            nonpeak=nonpeak_spec(),
            taxi_counts=(80, 160),
            default_taxis=160,
        )
    raise ValueError(f"unknown {SCALE_ENV} value {name!r}; use 'quick' or 'full'")
