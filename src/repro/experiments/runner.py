"""Experiment runner: cached simulation runs for the benchmark harness.

Every figure/table of the paper's evaluation is regenerated from the
same primitive — *run scheme S on scenario X with parameters P* — and
several figures share identical runs (Figs. 6-9 and Table III all come
from the peak fleet sweep).  The runner memoises completed runs by
their full parameter key so each configuration is simulated once per
process no matter how many benchmarks consume it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.payment import PaymentModel
from ..sim.engine import Simulator
from ..sim.metrics import SimulationMetrics
from ..sim.scenario import ScenarioSpec, get_scenario, nonpeak_spec, peak_spec


@dataclass(frozen=True, slots=True)
class RunKey:
    """Everything that determines a simulation run's outcome."""

    spec: ScenarioSpec
    scheme: str
    num_taxis: int
    capacity: int = 3
    rho: float = 1.3
    fleet_seed: int = 0
    partition_method: str = "bipartite"
    config_overrides: tuple = ()
    offline_count: int | None = None
    probabilistic: bool = False


_CACHE: dict[RunKey, SimulationMetrics] = {}


def clear_cache() -> None:
    """Forget all memoised runs (tests use this for isolation)."""
    _CACHE.clear()


def run(key: RunKey) -> SimulationMetrics:
    """Execute (or recall) one simulation run."""
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    scenario = get_scenario(key.spec)
    overrides = dict(key.config_overrides)
    overrides.setdefault("rho", key.rho)
    overrides.setdefault("capacity", key.capacity)
    config = scenario.default_config(**overrides)
    scheme = scenario.make_scheme(
        key.scheme,
        config=config,
        partition_method=key.partition_method,
        probabilistic=key.probabilistic,
    )
    requests = scenario.requests(rho=key.rho, offline_count=key.offline_count)
    fleet = scenario.make_fleet(key.num_taxis, capacity=key.capacity, seed=key.fleet_seed)
    metrics = Simulator(
        scheme,
        fleet,
        requests,
        payment=PaymentModel(beta=config.beta, eta=config.eta),
    ).run()
    _CACHE[key] = metrics
    return metrics


def run_simple(
    spec: ScenarioSpec,
    scheme: str,
    num_taxis: int,
    **kwargs,
) -> SimulationMetrics:
    """Convenience wrapper building the :class:`RunKey` from kwargs."""
    overrides = kwargs.pop("config_overrides", {})
    if isinstance(overrides, dict):
        overrides = tuple(sorted(overrides.items()))
    return run(RunKey(spec=spec, scheme=scheme, num_taxis=num_taxis,
                      config_overrides=overrides, **kwargs))


def collect_observability() -> dict:
    """Aggregate stage timings and counters across all memoised runs.

    The benchmark harness attaches this to each benchmark's
    ``extra_info`` so the JSON output carries per-stage dispatch
    timings and the lazy-cache hit rate alongside the wall times.
    Stages merge by summing counts/totals and widening min/max;
    counters sum.  Returns ``{"runs": 0}`` when nothing has run yet.
    """
    stages: dict[str, dict[str, float]] = {}
    counters: dict[str, int] = {}
    runs = 0
    for metrics in _CACHE.values():
        if not metrics.stages and not metrics.counters:
            continue
        runs += 1
        for name, stat in metrics.stages.items():
            agg = stages.get(name)
            if agg is None:
                stages[name] = dict(stat)
            else:
                agg["count"] += stat["count"]
                agg["total_s"] += stat["total_s"]
                agg["min_s"] = min(agg["min_s"], stat["min_s"])
                agg["max_s"] = max(agg["max_s"], stat["max_s"])
        for name, value in metrics.counters.items():
            counters[name] = counters.get(name, 0) + value
    for agg in stages.values():
        agg["mean_s"] = agg["total_s"] / agg["count"] if agg["count"] else 0.0
    hits = counters.get("spe.cache_hits", 0)
    misses = counters.get("spe.cache_misses", 0)
    out: dict = {"runs": runs, "stages": stages, "counters": counters}
    if hits or misses:
        out["lazy_cache_hit_rate"] = hits / (hits + misses)
    return out


# ----------------------------------------------------------------------
# benchmark scale presets
# ----------------------------------------------------------------------
#: Environment variable selecting the benchmark scale.
SCALE_ENV = "REPRO_BENCH_SCALE"


@dataclass(frozen=True, slots=True)
class BenchScale:
    """Benchmark sizing: scenario specs and fleet sweeps."""

    name: str
    peak: ScenarioSpec
    nonpeak: ScenarioSpec
    taxi_counts: tuple[int, ...]
    default_taxis: int


def bench_scale() -> BenchScale:
    """The active benchmark scale (``quick`` unless overridden).

    ``REPRO_BENCH_SCALE=full`` runs the paper-shaped sweeps (six fleet
    sizes, the full default scenario); ``quick`` (default) trims the
    sweep so the whole benchmark suite finishes in a few minutes.
    """
    name = os.environ.get(SCALE_ENV, "quick").lower()
    if name == "full":
        return BenchScale(
            name="full",
            peak=peak_spec(),
            nonpeak=nonpeak_spec(),
            taxi_counts=(50, 100, 150, 200, 250, 300),
            default_taxis=200,
        )
    if name == "quick":
        return BenchScale(
            name="quick",
            peak=peak_spec(),
            nonpeak=nonpeak_spec(),
            taxi_counts=(80, 160),
            default_taxis=160,
        )
    raise ValueError(f"unknown {SCALE_ENV} value {name!r}; use 'quick' or 'full'")
