"""Post-hoc analysis of simulation runs.

The paper reports aggregate metrics; downstream users usually want to
look *inside* a run: how deeply were rides shared, how was the fleet
utilised, how long did passengers of different trip lengths wait.  This
module computes those statistics from a finished
:class:`~repro.sim.engine.Simulator`'s log and fleet.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..fleet.taxi import FleetLog
from ..sim.engine import Simulator


@dataclass(frozen=True)
class SharingProfile:
    """How deeply rides were shared in one run.

    ``solo_trips`` rode alone for their entire journey;
    ``shared_trips`` overlapped with at least one co-rider.
    ``avg_corider_time_s`` is the mean on-board time spent with at
    least one co-rider, over all completed trips.
    """

    solo_trips: int
    shared_trips: int
    avg_corider_time_s: float

    @property
    def shared_fraction(self) -> float:
        """Share of completed trips that overlapped with a co-rider."""
        total = self.solo_trips + self.shared_trips
        return self.shared_trips / total if total else 0.0


def sharing_profile(log: FleetLog) -> SharingProfile:
    """Compute the sharing profile from per-request service records."""
    by_taxi: dict[int, list] = {}
    for trip in log.completed():
        by_taxi.setdefault(trip.taxi_id, []).append(trip)

    solo = 0
    shared = 0
    corider_times = []
    for trips in by_taxi.values():
        for trip in trips:
            overlap = 0.0
            for other in trips:
                if other is trip:
                    continue
                start = max(trip.pickup_time, other.pickup_time)
                end = min(trip.dropoff_time, other.dropoff_time)
                if end > start:
                    overlap += end - start
            overlap = min(overlap, trip.dropoff_time - trip.pickup_time)
            corider_times.append(overlap)
            if overlap > 0:
                shared += 1
            else:
                solo += 1
    avg = statistics.fmean(corider_times) if corider_times else 0.0
    return SharingProfile(solo_trips=solo, shared_trips=shared, avg_corider_time_s=avg)


@dataclass(frozen=True)
class FleetProfile:
    """How the fleet's time and capacity were used."""

    num_taxis: int
    taxis_used: int
    trips_per_taxi_mean: float
    trips_per_taxi_max: int
    busy_fraction_mean: float

    @property
    def taxis_unused(self) -> int:
        """Taxis that never carried a passenger."""
        return self.num_taxis - self.taxis_used


def fleet_profile(sim: Simulator, horizon_s: float = 3600.0) -> FleetProfile:
    """Fleet usage statistics from a finished simulation.

    ``horizon_s`` is the nominal service window used to express busy
    time as a fraction.
    """
    trips_by_taxi: dict[int, list] = {}
    for trip in sim.log.completed():
        trips_by_taxi.setdefault(trip.taxi_id, []).append(trip)

    counts = [len(v) for v in trips_by_taxi.values()]
    busy_fractions = []
    for trips in trips_by_taxi.values():
        busy = sum(t.dropoff_time - t.pickup_time for t in trips)
        busy_fractions.append(min(1.0, busy / horizon_s))

    return FleetProfile(
        num_taxis=len(sim.fleet),
        taxis_used=len(trips_by_taxi),
        trips_per_taxi_mean=statistics.fmean(counts) if counts else 0.0,
        trips_per_taxi_max=max(counts, default=0),
        busy_fraction_mean=statistics.fmean(busy_fractions) if busy_fractions else 0.0,
    )


@dataclass
class WaitingByTripLength:
    """Waiting time bucketed by direct trip duration."""

    buckets_s: tuple[float, ...] = (300.0, 600.0, 900.0, float("inf"))
    waits: dict[str, list[float]] = field(default_factory=dict)

    def label(self, direct_cost: float) -> str:
        lo = 0.0
        for hi in self.buckets_s:
            if direct_cost < hi:
                hi_txt = "inf" if hi == float("inf") else f"{hi / 60:.0f}"
                return f"{lo / 60:.0f}-{hi_txt} min"
            lo = hi
        raise AssertionError("unreachable")

    def add(self, direct_cost: float, waiting_s: float) -> None:
        self.waits.setdefault(self.label(direct_cost), []).append(waiting_s)

    def means_min(self) -> dict[str, float]:
        """Mean waiting minutes per trip-length bucket."""
        return {
            label: statistics.fmean(values) / 60.0
            for label, values in sorted(self.waits.items())
        }


def waiting_by_trip_length(log: FleetLog) -> WaitingByTripLength:
    """Bucket served requests' waiting times by their trip length."""
    out = WaitingByTripLength()
    for trip in log.completed():
        out.add(trip.request.direct_cost, trip.waiting_time)
    return out


def run_report(sim: Simulator) -> str:
    """A multi-line human-readable report for one finished run."""
    metrics = sim.metrics
    share = sharing_profile(sim.log)
    fleet = fleet_profile(sim)
    lines = [
        f"=== {metrics.scheme_name} run report ===",
        f"requests: {metrics.num_requests} "
        f"({metrics.num_online} online, {metrics.num_offline} offline)",
        f"served  : {metrics.served} ({metrics.service_rate:.1%}); "
        f"completed {metrics.completed}",
        f"latency : {metrics.avg_response_ms:.3f} ms response, "
        f"{metrics.avg_waiting_min:.2f} min waiting, "
        f"{metrics.avg_detour_min:.2f} min detour",
        f"sharing : {share.shared_trips}/{share.shared_trips + share.solo_trips} "
        f"trips shared ({share.shared_fraction:.1%}), "
        f"{share.avg_corider_time_s / 60:.1f} min avg co-rider time",
        f"fleet   : {fleet.taxis_used}/{fleet.num_taxis} taxis used, "
        f"{fleet.trips_per_taxi_mean:.1f} trips/taxi (max {fleet.trips_per_taxi_max}), "
        f"{fleet.busy_fraction_mean:.1%} busy",
    ]
    if metrics.regular_fares > 0:
        lines.append(
            f"money   : passengers save {metrics.fare_saving_pct:.1f}%, "
            f"drivers gain {metrics.driver_gain_pct:.1f}%"
        )
    return "\n".join(lines)
