"""Per-figure/table experiment functions (Section V of the paper).

Each function regenerates one table or figure of the paper's
evaluation: it runs (memoised) simulations with the right workload and
parameters and returns an :class:`ExperimentResult` whose rows are the
series the paper plots.  The benchmarks under ``benchmarks/`` wrap
these functions one-to-one.
"""

from __future__ import annotations

import time

from ..network.shortest_path import ShortestPathEngine
from ..sim.scenario import ScenarioSpec, get_scenario
from .reporting import ExperimentResult
from .runner import BenchScale, RunKey, bench_scale, run

#: The scheme line-up of the peak-scenario figures.
PEAK_SCHEMES = ("no-sharing", "t-share", "pgreedydp", "mt-share")

#: The non-peak figures add mT-Share_pro.
NONPEAK_SCHEMES = ("no-sharing", "t-share", "pgreedydp", "mt-share", "mt-share-pro")


def _metric_sweep(
    spec: ScenarioSpec,
    schemes: tuple[str, ...],
    taxi_counts: tuple[int, ...],
    metric: str,
    title: str,
    y_label: str,
) -> ExperimentResult:
    """Shared engine of Figs. 6-13: metric per scheme over fleet sizes."""
    result = ExperimentResult(
        title=title,
        x_label="#taxis",
        x_values=list(taxi_counts),
        y_label=y_label,
    )
    for scheme in schemes:
        values = []
        for n in taxi_counts:
            metrics = run(RunKey(spec=spec, scheme=scheme, num_taxis=n))
            values.append(getattr(metrics, metric))
        result.add_series(scheme, values)
    return result


# ----------------------------------------------------------------------
# Fig. 5 — dataset statistics
# ----------------------------------------------------------------------
def fig5_dataset_stats(scale: BenchScale | None = None) -> ExperimentResult:
    """Fig. 5: taxi-utilisation per hour and trip travel-time percentiles."""
    scale = scale or bench_scale()
    scenario = get_scenario(scale.peak)
    engine: ShortestPathEngine = scenario.engine

    # Day 2 is a plain workday (day 1 hosts the excised peak window).
    workday = scenario.history.window(2 * 86400.0, 3 * 86400.0)
    weekend = scenario.history.window(6 * 86400.0, 7 * 86400.0)
    hours = list(range(6, 22, 2))
    result = ExperimentResult(
        title="Fig. 5(a): average taxi utilisation ratio by hour of day",
        x_label="hour",
        x_values=hours,
        y_label="utilisation",
    )
    for name, day, base in (("workday", workday, 2), ("weekend", weekend, 6)):
        util = day.hourly_utilization(engine)
        result.add_series(
            name, [round(util.get(base * 24 + h, 0.0), 3) for h in hours]
        )
    pct = scenario.history.travel_time_distribution(engine, percentiles=(50.0, 90.0))
    result.notes.append(
        "Fig. 5(b): trip travel time p50="
        f"{pct[50.0] / 60.0:.1f} min, p90={pct[90.0] / 60.0:.1f} min "
        "(paper: 15 and 30 min on the full-size network)"
    )
    return result


# ----------------------------------------------------------------------
# Figs. 6-9 + Table III — peak scenario
# ----------------------------------------------------------------------
def fig6_served_peak(scale: BenchScale | None = None) -> ExperimentResult:
    """Fig. 6: number of served requests, peak scenario."""
    scale = scale or bench_scale()
    return _metric_sweep(
        scale.peak, PEAK_SCHEMES, scale.taxi_counts,
        "served", "Fig. 6: served requests (peak)", "served",
    )


def fig7_response_peak(scale: BenchScale | None = None) -> ExperimentResult:
    """Fig. 7: response time (ms), peak scenario."""
    scale = scale or bench_scale()
    return _metric_sweep(
        scale.peak, PEAK_SCHEMES, scale.taxi_counts,
        "avg_response_ms", "Fig. 7: response time in ms (peak)", "ms",
    )


def table3_candidates_peak(scale: BenchScale | None = None) -> ExperimentResult:
    """Table III: average number of candidate taxis per request, peak."""
    scale = scale or bench_scale()
    return _metric_sweep(
        scale.peak, ("no-sharing", "t-share", "pgreedydp", "mt-share"),
        scale.taxi_counts,
        "avg_candidates", "Table III: avg candidate taxis (peak)", "candidates",
    )


def fig8_detour_peak(scale: BenchScale | None = None) -> ExperimentResult:
    """Fig. 8: detour time (min), peak scenario."""
    scale = scale or bench_scale()
    return _metric_sweep(
        scale.peak, PEAK_SCHEMES, scale.taxi_counts,
        "avg_detour_min", "Fig. 8: detour time in minutes (peak)", "min",
    )


def fig9_waiting_peak(scale: BenchScale | None = None) -> ExperimentResult:
    """Fig. 9: waiting time (min), peak scenario."""
    scale = scale or bench_scale()
    return _metric_sweep(
        scale.peak, PEAK_SCHEMES, scale.taxi_counts,
        "avg_waiting_min", "Fig. 9: waiting time in minutes (peak)", "min",
    )


# ----------------------------------------------------------------------
# Figs. 10-13 — non-peak scenario (offline requests, mT-Share_pro)
# ----------------------------------------------------------------------
def fig10_served_nonpeak(scale: BenchScale | None = None) -> ExperimentResult:
    """Fig. 10: number of served requests, non-peak scenario."""
    scale = scale or bench_scale()
    return _metric_sweep(
        scale.nonpeak, NONPEAK_SCHEMES, scale.taxi_counts,
        "served", "Fig. 10: served requests (non-peak)", "served",
    )


def fig11_response_nonpeak(scale: BenchScale | None = None) -> ExperimentResult:
    """Fig. 11: response time (ms), non-peak scenario."""
    scale = scale or bench_scale()
    return _metric_sweep(
        scale.nonpeak, NONPEAK_SCHEMES, scale.taxi_counts,
        "avg_response_ms", "Fig. 11: response time in ms (non-peak)", "ms",
    )


def fig12_detour_nonpeak(scale: BenchScale | None = None) -> ExperimentResult:
    """Fig. 12: detour time (min), non-peak scenario."""
    scale = scale or bench_scale()
    return _metric_sweep(
        scale.nonpeak, NONPEAK_SCHEMES, scale.taxi_counts,
        "avg_detour_min", "Fig. 12: detour time in minutes (non-peak)", "min",
    )


def fig13_waiting_nonpeak(scale: BenchScale | None = None) -> ExperimentResult:
    """Fig. 13: waiting time (min), non-peak scenario."""
    scale = scale or bench_scale()
    return _metric_sweep(
        scale.nonpeak, NONPEAK_SCHEMES, scale.taxi_counts,
        "avg_waiting_min", "Fig. 13: waiting time in minutes (non-peak)", "min",
    )


# ----------------------------------------------------------------------
# Table IV — memory overhead
# ----------------------------------------------------------------------
def table4_memory(scale: BenchScale | None = None) -> ExperimentResult:
    """Table IV: index sizes at the largest fleet, peak scenario."""
    scale = scale or bench_scale()
    n = max(scale.taxi_counts)
    result = ExperimentResult(
        title=f"Table IV: index memory at {n} taxis (peak)",
        x_label="metric",
        x_values=["index_kb"],
        y_label="scheme",
    )
    for scheme in ("t-share", "pgreedydp", "mt-share"):
        metrics = run(RunKey(spec=scale.peak, scheme=scheme, num_taxis=n))
        result.add_series(scheme, [round(metrics.index_memory_bytes / 1024.0, 1)])
    return result


# ----------------------------------------------------------------------
# Fig. 14 — partitions and capacity
# ----------------------------------------------------------------------
def fig14a_partitions(scale: BenchScale | None = None,
                      kappas: tuple[int, ...] | None = None) -> ExperimentResult:
    """Fig. 14(a): served requests versus the partition count ``kappa``."""
    scale = scale or bench_scale()
    if kappas is None:
        base = scale.peak.num_partitions
        kappas = (max(8, base // 3), base, base * 2)
    result = ExperimentResult(
        title="Fig. 14(a): impact of partition number kappa (peak)",
        x_label="kappa",
        x_values=list(kappas),
        y_label="served",
    )
    values = []
    candidates = []
    for kappa in kappas:
        metrics = run(
            RunKey(
                spec=scale.peak,
                scheme="mt-share",
                num_taxis=scale.default_taxis,
                config_overrides=(("num_partitions", kappa),),
            )
        )
        values.append(metrics.served)
        candidates.append(round(metrics.avg_candidates, 2))
    result.add_series("mt-share", values)
    result.add_series("avg candidates", candidates)
    return result


def fig14b_capacity(scale: BenchScale | None = None,
                    capacities: tuple[int, ...] = (2, 3, 4, 6)) -> ExperimentResult:
    """Fig. 14(b): served requests versus taxi capacity."""
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Fig. 14(b): impact of taxi capacity (peak)",
        x_label="capacity",
        x_values=list(capacities),
        y_label="served",
    )
    values = [
        run(
            RunKey(spec=scale.peak, scheme="mt-share",
                   num_taxis=scale.default_taxis, capacity=c)
        ).served
        for c in capacities
    ]
    result.add_series("mt-share", values)
    return result


# ----------------------------------------------------------------------
# Table V — map-partitioning strategies
# ----------------------------------------------------------------------
def table5_partitioning(scale: BenchScale | None = None) -> ExperimentResult:
    """Table V: grid versus bipartite partitioning in both scenarios."""
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Table V: map partitioning strategies (mT-Share)",
        x_label="metric",
        x_values=["served", "detour_min"],
        y_label="strategy/scenario",
    )
    for kind, spec, scheme in (
        ("peak", scale.peak, "mt-share"),
        ("nonpeak", scale.nonpeak, "mt-share-pro"),
    ):
        for method in ("grid", "bipartite"):
            metrics = run(
                RunKey(
                    spec=spec,
                    scheme=scheme,
                    num_taxis=scale.default_taxis,
                    partition_method=method,
                )
            )
            result.add_series(
                f"{method}/{kind}",
                [metrics.served, round(metrics.avg_detour_min, 2)],
            )
    return result


# ----------------------------------------------------------------------
# Fig. 15 — searching range gamma
# ----------------------------------------------------------------------
def fig15_gamma(scale: BenchScale | None = None,
                gammas: tuple[float, ...] | None = None) -> ExperimentResult:
    """Fig. 15: impact of gamma on detour and waiting time (peak).

    The sweep pins every scheme — including mT-Share — to the static
    searching range, as the paper's sweep does.
    """
    scale = scale or bench_scale()
    scenario = get_scenario(scale.peak)
    base_gamma = scenario.default_config().search_range_m
    if gammas is None:
        gammas = tuple(round(base_gamma * f) for f in (0.6, 1.0, 1.4))
    result = ExperimentResult(
        title="Fig. 15: impact of searching range gamma (peak)",
        x_label="gamma_m",
        x_values=list(gammas),
        y_label="minutes",
    )
    for scheme in PEAK_SCHEMES:
        detours = []
        waits = []
        for gamma in gammas:
            metrics = run(
                RunKey(
                    spec=scale.peak,
                    scheme=scheme,
                    num_taxis=scale.default_taxis,
                    config_overrides=(
                        ("mtshare_adaptive_gamma", False),
                        ("search_range_m", float(gamma)),
                    ),
                )
            )
            detours.append(round(metrics.avg_detour_min, 2))
            waits.append(round(metrics.avg_waiting_min, 2))
        result.add_series(f"{scheme} detour", detours)
        result.add_series(f"{scheme} waiting", waits)
    return result


# ----------------------------------------------------------------------
# Fig. 16 — routing schemes
# ----------------------------------------------------------------------
def fig16_routing_modes(scale: BenchScale | None = None) -> ExperimentResult:
    """Fig. 16: online/offline served under basic vs probabilistic routing."""
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Fig. 16: served composition, basic vs probabilistic (non-peak)",
        x_label="metric",
        x_values=["online", "offline", "total"],
        y_label="scheme/routing",
    )
    for scheme in ("t-share", "pgreedydp", "mt-share"):
        for probabilistic in (False, True):
            if scheme == "mt-share":
                key = RunKey(
                    spec=scale.nonpeak,
                    scheme="mt-share-pro" if probabilistic else "mt-share",
                    num_taxis=scale.default_taxis,
                )
            else:
                key = RunKey(
                    spec=scale.nonpeak,
                    scheme=scheme,
                    num_taxis=scale.default_taxis,
                    probabilistic=probabilistic,
                )
            metrics = run(key)
            label = f"{scheme}/{'prob' if probabilistic else 'basic'}"
            result.add_series(
                label,
                [metrics.served_online, metrics.served_offline, metrics.served],
            )
    return result


# ----------------------------------------------------------------------
# Figs. 17-19 — flexible factor rho
# ----------------------------------------------------------------------
RHO_VALUES = (1.1, 1.2, 1.3, 1.4, 1.5)


def fig17_rho_waiting(scale: BenchScale | None = None,
                      rhos: tuple[float, ...] = RHO_VALUES) -> ExperimentResult:
    """Fig. 17: waiting time versus rho (peak, sharing schemes)."""
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Fig. 17: impact of rho on waiting time (peak)",
        x_label="rho",
        x_values=list(rhos),
        y_label="min",
    )
    for scheme in ("t-share", "pgreedydp", "mt-share"):
        result.add_series(
            scheme,
            [
                round(
                    run(
                        RunKey(spec=scale.peak, scheme=scheme,
                               num_taxis=scale.default_taxis, rho=rho)
                    ).avg_waiting_min,
                    2,
                )
                for rho in rhos
            ],
        )
    return result


def fig18_rho_detour_served(scale: BenchScale | None = None,
                            rhos: tuple[float, ...] = RHO_VALUES) -> ExperimentResult:
    """Fig. 18: mT-Share's detour time and served requests versus rho."""
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Fig. 18: impact of rho on detour and served (mT-Share, peak)",
        x_label="rho",
        x_values=list(rhos),
        y_label="value",
    )
    served = []
    detour = []
    for rho in rhos:
        metrics = run(
            RunKey(spec=scale.peak, scheme="mt-share",
                   num_taxis=scale.default_taxis, rho=rho)
        )
        served.append(metrics.served)
        detour.append(round(metrics.avg_detour_min, 2))
    result.add_series("served", served)
    result.add_series("detour_min", detour)
    return result


def fig19_rho_payment(scale: BenchScale | None = None,
                      rhos: tuple[float, ...] = RHO_VALUES) -> ExperimentResult:
    """Fig. 19: passenger fare saving and driver income gain versus rho."""
    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Fig. 19: payment-model benefits vs rho (mT-Share, peak)",
        x_label="rho",
        x_values=list(rhos),
        y_label="percent",
    )
    savings = []
    gains = []
    for rho in rhos:
        metrics = run(
            RunKey(spec=scale.peak, scheme="mt-share",
                   num_taxis=scale.default_taxis, rho=rho)
        )
        savings.append(round(metrics.fare_saving_pct, 2))
        gains.append(round(metrics.driver_gain_pct, 2))
    result.add_series("passenger saving %", savings)
    result.add_series("driver gain %", gains)
    return result


# ----------------------------------------------------------------------
# Fig. 20 — direction threshold lambda
# ----------------------------------------------------------------------
def fig20_lambda(scale: BenchScale | None = None,
                 thetas_deg: tuple[float, ...] = (30.0, 45.0, 60.0, 75.0)) -> ExperimentResult:
    """Fig. 20: served requests and response time versus theta (lambda)."""
    import math

    scale = scale or bench_scale()
    result = ExperimentResult(
        title="Fig. 20: impact of direction threshold theta (mT-Share, peak)",
        x_label="theta_deg",
        x_values=list(thetas_deg),
        y_label="value",
    )
    served = []
    response = []
    for theta in thetas_deg:
        lam = round(math.cos(math.radians(theta)), 4)
        metrics = run(
            RunKey(
                spec=scale.peak,
                scheme="mt-share",
                num_taxis=scale.default_taxis,
                config_overrides=(("lam", lam),),
            )
        )
        served.append(metrics.served)
        response.append(round(metrics.avg_response_ms, 3))
    result.add_series("served", served)
    result.add_series("response_ms", response)
    return result


# ----------------------------------------------------------------------
# Fig. 21 — scalability with data volume
# ----------------------------------------------------------------------
def fig21_scalability(scale: BenchScale | None = None,
                      hour_counts: tuple[int, ...] | None = None) -> ExperimentResult:
    """Fig. 21: execution and response time versus hours of trace data.

    Runs mT-Share over growing multi-hour workday workloads (and
    mT-Share_pro over weekend workloads when the scale is ``full``),
    reporting total execution wall time and the per-request response
    time, which the paper shows growing linearly and staying flat,
    respectively.
    """
    scale = scale or bench_scale()
    if hour_counts is None:
        hour_counts = (1, 2, 4) if scale.name == "quick" else (1, 2, 4, 8, 13)
    scenario = get_scenario(scale.peak)
    result = ExperimentResult(
        title="Fig. 21: scalability with used data amounts (mT-Share, workday)",
        x_label="hours",
        x_values=list(hour_counts),
        y_label="value",
    )
    exec_times = []
    responses = []
    for hours in hour_counts:
        window = scenario.demand.generate_window(1, 7, hours, weekend=False)
        requests = window.to_requests(scenario.engine, rho=1.3,
                                      time_origin=7 * 3600.0 + 86400.0)
        scheme = scenario.make_scheme("mt-share")
        fleet = scenario.make_fleet(scale.default_taxis)
        from ..sim.engine import Simulator

        start = time.perf_counter()  # repro-lint: disable=REP003 reason=Fig. 21 reports measured execution time
        metrics = Simulator(scheme, fleet, requests).run()
        exec_times.append(round(time.perf_counter() - start, 2))  # repro-lint: disable=REP003 reason=Fig. 21 reports measured execution time
        responses.append(round(metrics.avg_response_ms, 3))
    result.add_series("execution_s", exec_times)
    result.add_series("response_ms", responses)
    return result


# ----------------------------------------------------------------------
# Fig. 21 companion — scalability with network size
# ----------------------------------------------------------------------
def fig21v_vertex_scalability(
    scale: BenchScale | None = None,
    grid_sides: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Fig. 21 companion: execution and response time versus |V|.

    The paper's Fig. 21 grows the trace volume on a fixed road network;
    this companion grows the *network* at a fixed workload — the axis
    the contraction-hierarchy backend unlocks (a full APSP table needs
    O(V^2) memory and dies around 20k vertices; ``mode="auto"`` flips
    to ``ch`` above ``FULL_APSP_LIMIT``).  mT-Share runs with the
    geometric partitioner (k-means over coordinates stays tractable at
    hundreds of thousands of vertices, unlike the bipartite fixed
    point) over one evaluation hour per size.
    """
    scale = scale or bench_scale()
    if grid_sides is None:
        # quick: one full-mode grid and one past the auto ch cutover;
        # full: ~10k, ~50k and ~200k vertices.
        grid_sides = (40, 90) if scale.name == "quick" else (100, 224, 448)
    from ..sim.engine import Simulator

    vertices = []
    exec_times = []
    responses = []
    modes = []
    for side in grid_sides:
        spec = ScenarioSpec(
            kind="peak",
            grid_rows=side,
            grid_cols=side,
            spacing_m=180.0,
            hourly_requests=min(scale.peak.hourly_requests, 400),
            history_days=2,
            offline_count=40,
            num_partitions=16,
            seed=7,
        )
        scenario = get_scenario(spec)
        vertices.append(scenario.network.num_vertices)
        modes.append(scenario.engine.mode)
        requests = scenario.requests()
        scheme = scenario.make_scheme("mt-share", partition_method="geo")
        fleet = scenario.make_fleet(min(scale.default_taxis, 120))
        start = time.perf_counter()  # repro-lint: disable=REP003 reason=Fig. 21 reports measured execution time
        metrics = Simulator(scheme, fleet, requests).run()
        exec_times.append(round(time.perf_counter() - start, 2))  # repro-lint: disable=REP003 reason=Fig. 21 reports measured execution time
        responses.append(round(metrics.avg_response_ms, 3))
    result = ExperimentResult(
        title="Fig. 21 companion: scalability with network size (mT-Share, geo)",
        x_label="vertices",
        x_values=vertices,
        y_label="value",
    )
    result.add_series("execution_s", exec_times)
    result.add_series("response_ms", responses)
    result.add_series("sp_mode", modes)
    return result


#: Experiments that do not route their work through :func:`run` (they
#: read the trace or drive the simulator directly), so a planning pass
#: over them yields nothing to parallelise.
NON_RUN_FIGURES = frozenset({"fig5", "fig21", "fig21v"})


def figure_run_keys(
    names: tuple[str, ...] | list[str] | None = None,
    scale: BenchScale | None = None,
) -> list[RunKey]:
    """The unique RunKeys the named experiments would simulate.

    A planning pass (see :func:`repro.experiments.runner.collect_keys`)
    over each experiment function; figures in :data:`NON_RUN_FIGURES`
    are skipped.  Feed the result to ``run_many`` to execute a whole
    multi-figure sweep in parallel, then call the experiment functions
    normally — every run is recalled from the memo cache.
    """
    from .runner import collect_keys

    if names is None:
        names = [n for n in ALL_EXPERIMENTS if n not in NON_RUN_FIGURES]
    keys: list[RunKey] = []
    for name in names:
        if name in NON_RUN_FIGURES:
            continue
        keys.extend(collect_keys(ALL_EXPERIMENTS[name], scale))
    return list(dict.fromkeys(keys))


#: Registry used by the benchmark suite and the EXPERIMENTS.md generator.
# ----------------------------------------------------------------------
# Fig. 22w (companion) — batch-window assignment at peak workload
# ----------------------------------------------------------------------
def fig22w_window_peak(scale: BenchScale | None = None,
                       taxi_counts: tuple[int, ...] | None = None) -> ExperimentResult:
    """Companion figure: ``window-lap`` versus greedy mT-Share at peak.

    Sweeps the peak fleet sizes and reports, per scheme, the served
    count and the amortised per-request dispatch cost (the
    ``sim.dispatch`` stage total over the online population) — the
    trade the whole-window LAP makes: a bounded matching delay buys
    batched matrix fill and one globally optimal assignment per window.
    """
    scale = scale or bench_scale()
    taxi_counts = taxi_counts or scale.taxi_counts
    result = ExperimentResult(
        title="Fig. 22w: batch-window LAP vs greedy mT-Share (peak)",
        x_label="#taxis",
        x_values=list(taxi_counts),
        y_label="value",
    )
    for scheme in ("mt-share", "window-lap"):
        served = []
        dispatch_ms = []
        waiting = []
        for n in taxi_counts:
            metrics = run(RunKey(spec=scale.peak, scheme=scheme, num_taxis=n))
            served.append(metrics.served)
            stage = metrics.stages.get("sim.dispatch", {})
            per_request = stage.get("total_s", 0.0) / max(metrics.num_online, 1)
            dispatch_ms.append(round(1000.0 * per_request, 3))
            waiting.append(round(metrics.avg_waiting_min, 2))
        result.add_series(f"{scheme} served", served)
        result.add_series(f"{scheme} dispatch_ms", dispatch_ms)
        result.add_series(f"{scheme} waiting_min", waiting)
    return result


ALL_EXPERIMENTS = {
    "fig5": fig5_dataset_stats,
    "fig6": fig6_served_peak,
    "fig7": fig7_response_peak,
    "table3": table3_candidates_peak,
    "fig8": fig8_detour_peak,
    "fig9": fig9_waiting_peak,
    "fig10": fig10_served_nonpeak,
    "fig11": fig11_response_nonpeak,
    "fig12": fig12_detour_nonpeak,
    "fig13": fig13_waiting_nonpeak,
    "table4": table4_memory,
    "fig14a": fig14a_partitions,
    "fig14b": fig14b_capacity,
    "table5": table5_partitioning,
    "fig15": fig15_gamma,
    "fig16": fig16_routing_modes,
    "fig17": fig17_rho_waiting,
    "fig18": fig18_rho_detour_served,
    "fig19": fig19_rho_payment,
    "fig20": fig20_lambda,
    "fig21": fig21_scalability,
    "fig21v": fig21v_vertex_scalability,
    "fig22w": fig22w_window_peak,
}
