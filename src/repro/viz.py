"""SVG rendering of networks, partitions, routes and demand.

Dependency-free visual output (the paper's Fig. 3 shows the Chengdu
network and its bipartite partitioning; Fig. 4 illustrates partition
filtering).  Every function returns an SVG document as a string;
``save`` writes one to disk.  Colours cycle through a qualitative
palette per partition/route.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Iterable, Sequence

import numpy as np

from .network.graph import RoadNetwork
from .partitioning.bipartite import MapPartitioning

#: Qualitative palette cycled for partitions and routes.
PALETTE = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
    "#1b9e77", "#d95f02", "#7570b3", "#e7298a", "#66a61e",
)


class _Canvas:
    """Maps planar metres onto an SVG viewport and collects elements."""

    def __init__(self, network: RoadNetwork, size: int, margin: int) -> None:
        xy = np.asarray(network.xy)
        self._min = xy.min(axis=0)
        span = max(float((xy.max(axis=0) - self._min).max()), 1e-9)
        self._scale = (size - 2 * margin) / span
        self._margin = margin
        self._size = size
        self.elements: list[str] = []

    def pt(self, x: float, y: float) -> tuple[float, float]:
        sx = self._margin + (x - self._min[0]) * self._scale
        # SVG's y axis points down; flip so north is up.
        sy = self._size - self._margin - (y - self._min[1]) * self._scale
        return round(sx, 2), round(sy, 2)

    def line(self, x1, y1, x2, y2, color="#999", width=1.0, opacity=1.0) -> None:
        a = self.pt(x1, y1)
        b = self.pt(x2, y2)
        self.elements.append(
            f'<line x1="{a[0]}" y1="{a[1]}" x2="{b[0]}" y2="{b[1]}" '
            f'stroke="{color}" stroke-width="{width}" stroke-opacity="{opacity}"/>'
        )

    def circle(self, x, y, r=2.0, color="#333", opacity=1.0) -> None:
        c = self.pt(x, y)
        self.elements.append(
            f'<circle cx="{c[0]}" cy="{c[1]}" r="{r}" fill="{color}" '
            f'fill-opacity="{opacity}"/>'
        )

    def polyline(self, points: Sequence[tuple[float, float]], color="#e15759", width=2.5) -> None:
        path = " ".join(f"{p[0]},{p[1]}" for p in (self.pt(x, y) for x, y in points))
        self.elements.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="{width}" stroke-linecap="round" stroke-linejoin="round"/>'
        )

    def text(self, x, y, content, size=12, color="#000") -> None:
        c = self.pt(x, y)
        self.elements.append(
            f'<text x="{c[0]}" y="{c[1]}" font-size="{size}" fill="{color}" '
            f'font-family="sans-serif">{content}</text>'
        )

    def render(self, title: str = "") -> str:
        head = (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self._size}" '
            f'height="{self._size}" viewBox="0 0 {self._size} {self._size}">'
        )
        body = [head, '<rect width="100%" height="100%" fill="white"/>']
        if title:
            body.append(
                f'<text x="{self._margin}" y="18" font-size="14" '
                f'font-family="sans-serif" font-weight="bold">{title}</text>'
            )
        body.extend(self.elements)
        body.append("</svg>")
        return "\n".join(body)


def render_network(network: RoadNetwork, size: int = 800, title: str = "") -> str:
    """The road network: grey segments plus intersection dots."""
    canvas = _Canvas(network, size, margin=24)
    xy = np.asarray(network.xy)
    for u, v, _length in network.edges():
        if u < v:  # draw each undirected pair once
            canvas.line(*xy[u], *xy[v], color="#bbb", width=1.0)
    for x, y in xy:
        canvas.circle(float(x), float(y), r=1.4, color="#666")
    return canvas.render(title or "road network")


def render_partitions(
    network: RoadNetwork,
    partitioning: MapPartitioning,
    size: int = 800,
    title: str = "",
) -> str:
    """The paper's Fig. 3(b): vertices coloured by map partition."""
    canvas = _Canvas(network, size, margin=24)
    xy = np.asarray(network.xy)
    for u, v, _length in network.edges():
        if u < v:
            canvas.line(*xy[u], *xy[v], color="#ddd", width=0.8)
    for vertex in range(network.num_vertices):
        color = PALETTE[partitioning.partition_of(vertex) % len(PALETTE)]
        canvas.circle(float(xy[vertex, 0]), float(xy[vertex, 1]), r=3.0, color=color)
    label = title or (
        f"{partitioning.method} partitioning, kappa={partitioning.num_partitions}"
    )
    return canvas.render(label)


def render_routes(
    network: RoadNetwork,
    routes: Iterable[Sequence[int]],
    size: int = 800,
    title: str = "",
    markers: Iterable[int] = (),
) -> str:
    """Vertex paths over the network (e.g. a shared taxi's route).

    ``markers`` are highlighted vertices (pick-up/drop-off points).
    """
    canvas = _Canvas(network, size, margin=24)
    xy = np.asarray(network.xy)
    for u, v, _length in network.edges():
        if u < v:
            canvas.line(*xy[u], *xy[v], color="#ddd", width=0.8)
    for i, route in enumerate(routes):
        color = PALETTE[i % len(PALETTE)]
        points = [(float(xy[n, 0]), float(xy[n, 1])) for n in route]
        if len(points) >= 2:
            canvas.polyline(points, color=color, width=2.5)
        if points:
            canvas.circle(*points[0], r=4.0, color=color)
    for node in markers:
        canvas.circle(float(xy[node, 0]), float(xy[node, 1]), r=5.0, color="#000", opacity=0.8)
    return canvas.render(title or "taxi routes")


def render_demand(
    network: RoadNetwork,
    pickup_counts: np.ndarray,
    size: int = 800,
    title: str = "",
) -> str:
    """A pick-up heat map: dot area proportional to demand."""
    counts = np.asarray(pickup_counts, dtype=float)
    if counts.shape != (network.num_vertices,):
        raise ValueError("pickup_counts must have one entry per vertex")
    canvas = _Canvas(network, size, margin=24)
    xy = np.asarray(network.xy)
    for u, v, _length in network.edges():
        if u < v:
            canvas.line(*xy[u], *xy[v], color="#eee", width=0.8)
    peak = counts.max() if counts.size and counts.max() > 0 else 1.0
    for vertex in range(network.num_vertices):
        share = counts[vertex] / peak
        if share <= 0:
            continue
        canvas.circle(
            float(xy[vertex, 0]),
            float(xy[vertex, 1]),
            r=2.0 + 10.0 * np.sqrt(share),
            color="#e15759",
            opacity=0.35 + 0.5 * share,
        )
    return canvas.render(title or "pick-up demand")


def save(svg: str, path: str | Path) -> Path:
    """Write an SVG string to disk; returns the path."""
    path = Path(path)
    path.write_text(svg)
    return path
