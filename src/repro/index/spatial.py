"""Uniform-grid spatial indexes: moving objects and static vertices.

T-Share, pGreedyDP and the No-Sharing baseline all index taxis by the
grid cell of their current location and answer "taxis within range
``gamma`` of a point" queries (:class:`GridSpatialIndex`).  The index
stores planar positions and filters candidates by exact Euclidean
distance after the coarse cell scan, so results are exact.

:class:`StaticVertexGrid` is the immutable counterpart over *network
vertices*: buckets are numpy arrays built once with a lexsort, and a
radius query touches only the O(1) ring of cells around the query
point instead of scanning every vertex.  The simulator uses it to
register offline requests (``Simulator._register_offline``).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np


class GridSpatialIndex:
    """Point index with O(1) updates and grid-pruned radius queries.

    Parameters
    ----------
    cell_size_m:
        Grid cell edge length.  Radius queries scan the
        ``ceil(r / cell)`` ring of cells around the query point.
    """

    def __init__(self, cell_size_m: float = 500.0) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell size must be positive")
        self._cell = float(cell_size_m)
        self._cells: dict[tuple[int, int], set[int]] = {}
        self._positions: dict[int, tuple[float, float]] = {}

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self._cell), math.floor(y / self._cell))

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._positions

    def insert(self, obj_id: int, x: float, y: float) -> None:
        """Insert or move an object to ``(x, y)``."""
        if obj_id in self._positions:
            self.remove(obj_id)
        key = self._cell_of(x, y)
        self._cells.setdefault(key, set()).add(obj_id)
        self._positions[obj_id] = (x, y)

    update = insert

    def remove(self, obj_id: int) -> None:
        """Remove an object; missing ids are ignored."""
        pos = self._positions.pop(obj_id, None)
        if pos is None:
            return
        key = self._cell_of(*pos)
        bucket = self._cells.get(key)
        if bucket is not None:
            bucket.discard(obj_id)
            if not bucket:
                del self._cells[key]

    def position(self, obj_id: int) -> tuple[float, float]:
        """Stored position of ``obj_id``."""
        return self._positions[obj_id]

    def query_radius(self, x: float, y: float, radius_m: float) -> list[tuple[int, float]]:
        """Objects within ``radius_m`` of ``(x, y)`` with exact distances.

        Returns ``(obj_id, distance)`` pairs sorted by distance.
        """
        if radius_m < 0:
            return []
        span = math.ceil(radius_m / self._cell)
        cx, cy = self._cell_of(x, y)
        hits: list[tuple[int, float]] = []
        for gx in range(cx - span, cx + span + 1):
            for gy in range(cy - span, cy + span + 1):
                bucket = self._cells.get((gx, gy))
                if not bucket:
                    continue
                for obj_id in bucket:
                    px, py = self._positions[obj_id]
                    # hypot, not squared distances: squares of denormal
                    # offsets underflow to zero and misclassify points.
                    d = math.hypot(px - x, py - y)
                    if d <= radius_m:
                        hits.append((obj_id, d))
        hits.sort(key=lambda h: (h[1], h[0]))
        return hits

    def query_radius_cells(self, x: float, y: float, radius_m: float) -> list[tuple[int, float]]:
        """Objects in cells whose *centre* lies within ``radius_m``.

        This is how the grid-based indexes of T-Share and pGreedyDP
        answer range queries: the searched area is a set of whole grid
        cells, so objects near the far edge of an excluded cell are
        missed even when their exact distance is within range (the
        "partial trip information" limitation the mT-Share paper's
        Fig. 1 illustrates with taxi t3).  Distances returned are to
        the cell centre, which is all the grid knows.
        """
        if radius_m < 0:
            return []
        span = math.ceil(radius_m / self._cell) + 1
        cx, cy = self._cell_of(x, y)
        hits: list[tuple[int, float]] = []
        for gx in range(cx - span, cx + span + 1):
            for gy in range(cy - span, cy + span + 1):
                bucket = self._cells.get((gx, gy))
                if not bucket:
                    continue
                center_x = (gx + 0.5) * self._cell
                center_y = (gy + 0.5) * self._cell
                d = math.hypot(center_x - x, center_y - y)
                if d <= radius_m:
                    hits.extend((obj_id, d) for obj_id in bucket)
        hits.sort(key=lambda h: (h[1], h[0]))
        return hits

    def bulk_load(self, items: Iterable[tuple[int, float, float]]) -> None:
        """Insert many ``(obj_id, x, y)`` triples."""
        for obj_id, x, y in items:
            self.insert(obj_id, x, y)

    def memory_bytes(self) -> int:
        """Rough footprint: cells plus position table."""
        return 96 * len(self._cells) + 72 * len(self._positions)


class StaticVertexGrid:
    """Immutable uniform-cell index over a fixed vertex point set.

    Built once from the network's ``xy`` array; each cell's bucket is a
    sorted numpy array of vertex ids.  :meth:`query_radius` gathers the
    ``ceil(r / cell)`` ring of buckets around the query point and
    applies the exact squared-distance predicate ``d2 <= r**2`` over
    the candidates — the same predicate (and the same float arithmetic)
    as a full-array scan, so results are identical to one, in ascending
    vertex-id order, at O(cell) cost.

    Parameters
    ----------
    xy:
        ``(V, 2)`` array of planar vertex coordinates.
    cell_size_m:
        Grid cell edge length; pick it near the typical query radius so
        a query touches a 3x3 ring.
    """

    __slots__ = ("_xy", "_cell", "_buckets")

    def __init__(self, xy: np.ndarray, cell_size_m: float = 250.0) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell size must be positive")
        self._xy = np.asarray(xy, dtype=float)
        self._cell = float(cell_size_m)
        gx = np.floor(self._xy[:, 0] / self._cell).astype(np.int64)
        gy = np.floor(self._xy[:, 1] / self._cell).astype(np.int64)
        order = np.lexsort((gy, gx))
        sx, sy = gx[order], gy[order]
        if order.size:
            change = np.flatnonzero((np.diff(sx) != 0) | (np.diff(sy) != 0)) + 1
            starts = np.concatenate(([0], change))
            ends = np.concatenate((change, [order.size]))
        else:
            starts = ends = np.empty(0, dtype=np.int64)
        # lexsort is stable, so each slice of ``order`` is already in
        # ascending vertex-id order.
        self._buckets: dict[tuple[int, int], np.ndarray] = {
            (int(sx[s]), int(sy[s])): order[s:e] for s, e in zip(starts, ends)
        }

    def __len__(self) -> int:
        return int(self._xy.shape[0])

    def query_radius(self, x: float, y: float, radius_m: float) -> np.ndarray:
        """Vertex ids within ``radius_m`` of ``(x, y)``, ascending.

        Bit-identical to ``(d2 <= radius_m**2).nonzero()[0]`` over the
        full coordinate array.
        """
        if radius_m < 0:
            return np.empty(0, dtype=np.int64)
        span = math.ceil(radius_m / self._cell)
        cx = math.floor(x / self._cell)
        cy = math.floor(y / self._cell)
        buckets = [
            b
            for gx in range(cx - span, cx + span + 1)
            for gy in range(cy - span, cy + span + 1)
            if (b := self._buckets.get((gx, gy))) is not None
        ]
        if not buckets:
            return np.empty(0, dtype=np.int64)
        cand = np.concatenate(buckets)
        pts = self._xy[cand]
        d2 = (pts[:, 0] - float(x)) ** 2 + (pts[:, 1] - float(y)) ** 2
        return np.sort(cand[d2 <= radius_m**2])

    def memory_bytes(self) -> int:
        """Rough footprint: bucket table plus id arrays."""
        return 96 * len(self._buckets) + 8 * int(self._xy.shape[0])
