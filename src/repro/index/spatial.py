"""Uniform-grid spatial index over moving objects (taxis).

T-Share, pGreedyDP and the No-Sharing baseline all index taxis by the
grid cell of their current location and answer "taxis within range
``gamma`` of a point" queries.  The index stores planar positions and
filters candidates by exact Euclidean distance after the coarse cell
scan, so results are exact.
"""

from __future__ import annotations

import math
from collections.abc import Iterable


class GridSpatialIndex:
    """Point index with O(1) updates and grid-pruned radius queries.

    Parameters
    ----------
    cell_size_m:
        Grid cell edge length.  Radius queries scan the
        ``ceil(r / cell)`` ring of cells around the query point.
    """

    def __init__(self, cell_size_m: float = 500.0) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell size must be positive")
        self._cell = float(cell_size_m)
        self._cells: dict[tuple[int, int], set[int]] = {}
        self._positions: dict[int, tuple[float, float]] = {}

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self._cell), math.floor(y / self._cell))

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._positions

    def insert(self, obj_id: int, x: float, y: float) -> None:
        """Insert or move an object to ``(x, y)``."""
        if obj_id in self._positions:
            self.remove(obj_id)
        key = self._cell_of(x, y)
        self._cells.setdefault(key, set()).add(obj_id)
        self._positions[obj_id] = (x, y)

    update = insert

    def remove(self, obj_id: int) -> None:
        """Remove an object; missing ids are ignored."""
        pos = self._positions.pop(obj_id, None)
        if pos is None:
            return
        key = self._cell_of(*pos)
        bucket = self._cells.get(key)
        if bucket is not None:
            bucket.discard(obj_id)
            if not bucket:
                del self._cells[key]

    def position(self, obj_id: int) -> tuple[float, float]:
        """Stored position of ``obj_id``."""
        return self._positions[obj_id]

    def query_radius(self, x: float, y: float, radius_m: float) -> list[tuple[int, float]]:
        """Objects within ``radius_m`` of ``(x, y)`` with exact distances.

        Returns ``(obj_id, distance)`` pairs sorted by distance.
        """
        if radius_m < 0:
            return []
        span = math.ceil(radius_m / self._cell)
        cx, cy = self._cell_of(x, y)
        hits: list[tuple[int, float]] = []
        for gx in range(cx - span, cx + span + 1):
            for gy in range(cy - span, cy + span + 1):
                bucket = self._cells.get((gx, gy))
                if not bucket:
                    continue
                for obj_id in bucket:
                    px, py = self._positions[obj_id]
                    # hypot, not squared distances: squares of denormal
                    # offsets underflow to zero and misclassify points.
                    d = math.hypot(px - x, py - y)
                    if d <= radius_m:
                        hits.append((obj_id, d))
        hits.sort(key=lambda h: (h[1], h[0]))
        return hits

    def query_radius_cells(self, x: float, y: float, radius_m: float) -> list[tuple[int, float]]:
        """Objects in cells whose *centre* lies within ``radius_m``.

        This is how the grid-based indexes of T-Share and pGreedyDP
        answer range queries: the searched area is a set of whole grid
        cells, so objects near the far edge of an excluded cell are
        missed even when their exact distance is within range (the
        "partial trip information" limitation the mT-Share paper's
        Fig. 1 illustrates with taxi t3).  Distances returned are to
        the cell centre, which is all the grid knows.
        """
        if radius_m < 0:
            return []
        span = math.ceil(radius_m / self._cell) + 1
        cx, cy = self._cell_of(x, y)
        hits: list[tuple[int, float]] = []
        for gx in range(cx - span, cx + span + 1):
            for gy in range(cy - span, cy + span + 1):
                bucket = self._cells.get((gx, gy))
                if not bucket:
                    continue
                center_x = (gx + 0.5) * self._cell
                center_y = (gy + 0.5) * self._cell
                d = math.hypot(center_x - x, center_y - y)
                if d <= radius_m:
                    hits.extend((obj_id, d) for obj_id in bucket)
        hits.sort(key=lambda h: (h[1], h[0]))
        return hits

    def bulk_load(self, items: Iterable[tuple[int, float, float]]) -> None:
        """Insert many ``(obj_id, x, y)`` triples."""
        for obj_id, x, y in items:
            self.insert(obj_id, x, y)

    def memory_bytes(self) -> int:
        """Rough footprint: cells plus position table."""
        return 96 * len(self._cells) + 72 * len(self._positions)
