"""Map-partition-based taxi index (Section IV-B3 of the paper).

For every map partition ``P_z`` the index keeps a taxi list ``P_z.L_t``
of the taxis that are currently in, or whose planned route will reach,
partition ``P_z`` within a horizon ``T_mp`` (the paper uses one hour),
annotated with the arrival time and kept sorted ascending by it.  The
list answers two questions during candidate searching: *which taxis can
be near this request's origin*, and *can taxi t reach the request's
partition before its pick-up deadline* (refinement rule 3).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

DEFAULT_HORIZON_S = 3600.0


class PartitionTaxiIndex:
    """Per-partition taxi lists with arrival times.

    Parameters
    ----------
    num_partitions:
        Number of map partitions ``kappa``.
    horizon_s:
        ``T_mp``: route positions further than this in the future are
        not indexed.
    """

    def __init__(self, num_partitions: int, horizon_s: float = DEFAULT_HORIZON_S) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        self._horizon = float(horizon_s)
        self._by_partition: list[dict[int, float]] = [{} for _ in range(num_partitions)]
        self._partitions_of_taxi: dict[int, set[int]] = {}

    @property
    def num_partitions(self) -> int:
        """Number of partitions indexed."""
        return len(self._by_partition)

    @property
    def horizon_s(self) -> float:
        """The indexing horizon ``T_mp`` in seconds."""
        return self._horizon

    def update_taxi(
        self,
        taxi_id: int,
        partition_arrivals: dict[int, float],
    ) -> None:
        """Replace the indexed partitions of ``taxi_id``.

        ``partition_arrivals`` maps partition id to the earliest arrival
        time along the taxi's (re)planned route; entries are taken as
        given (the caller applies the horizon against *now*).
        """
        self.remove_taxi(taxi_id)
        touched: set[int] = set()
        for z, t in partition_arrivals.items():
            self._by_partition[z][taxi_id] = float(t)
            touched.add(z)
        if touched:
            self._partitions_of_taxi[taxi_id] = touched

    def update_taxi_from_route(
        self,
        taxi_id: int,
        route_nodes: Sequence[int],
        route_times: Sequence[float],
        partition_of: Callable[[int], int],
        now: float,
    ) -> None:
        """Index a taxi from its concrete route.

        ``partition_of`` maps a vertex to its partition id.  The first
        arrival per partition within ``now + T_mp`` is recorded.
        """
        arrivals: dict[int, float] = {}
        limit = now + self._horizon
        for node, t in zip(route_nodes, route_times):
            if t > limit:
                break
            z = partition_of(node)
            if z not in arrivals or t < arrivals[z]:
                arrivals[z] = max(t, now)
        self.update_taxi(taxi_id, arrivals)

    def place_idle_taxi(self, taxi_id: int, partition: int, now: float) -> None:
        """Index an idle (parked) taxi at its current partition."""
        self.update_taxi(taxi_id, {partition: now})

    def remove_taxi(self, taxi_id: int) -> None:
        """Drop all index entries of ``taxi_id``."""
        for z in self._partitions_of_taxi.pop(taxi_id, ()):
            self._by_partition[z].pop(taxi_id, None)

    def taxis_in(self, partition: int) -> list[tuple[int, float]]:
        """``P_z.L_t``: ``(taxi_id, arrival_time)`` sorted by arrival."""
        entries = self._by_partition[partition]
        return sorted(entries.items(), key=lambda kv: (kv[1], kv[0]))

    def taxi_ids_in(self, partition: int) -> set[int]:
        """Just the taxi ids of ``P_z.L_t``."""
        return set(self._by_partition[partition])

    def arrival_time(self, partition: int, taxi_id: int) -> float | None:
        """Indexed arrival of ``taxi_id`` at ``partition``, if any."""
        return self._by_partition[partition].get(taxi_id)

    def arrival_map(self, partition: int) -> dict[int, float]:
        """The live taxi -> arrival mapping of one partition.

        Returned by reference so candidate screening can probe a whole
        pool with plain dict lookups; callers must treat it as
        read-only.
        """
        return self._by_partition[partition]

    def partitions_of(self, taxi_id: int) -> set[int]:
        """Partitions currently indexing ``taxi_id``."""
        return set(self._partitions_of_taxi.get(taxi_id, ()))

    def union_taxis(self, partitions: Iterable[int]) -> list[int]:
        """Union of the taxi lists of several partitions (Eq. 3 left side).

        Returned in ascending taxi-id order so downstream candidate
        enumeration (and therefore tie-broken match winners) does not
        depend on set-iteration order, i.e. on the hash seed.
        """
        out: set[int] = set()
        for z in partitions:
            out.update(self._by_partition[z])
        return sorted(out)

    def total_entries(self) -> int:
        """Total (taxi, partition) index entries — the ``(x+1)M`` term of
        the paper's memory-complexity analysis."""
        return sum(len(d) for d in self._by_partition)

    def memory_bytes(self) -> int:
        """Rough footprint of the index structures."""
        total = 0
        for d in self._by_partition:
            total += 64 + 56 * len(d)
        for s in self._partitions_of_taxi.values():
            total += 64 + 28 * len(s)
        return total
