"""Indexing substrate: spatial grid and partition-based taxi indexes.

The mobility-cluster index lives with the rest of the paper's core
contribution in :mod:`repro.core.mobility_cluster`.
"""

from .partition_index import DEFAULT_HORIZON_S, PartitionTaxiIndex
from .spatial import GridSpatialIndex, StaticVertexGrid

__all__ = ["DEFAULT_HORIZON_S", "GridSpatialIndex", "PartitionTaxiIndex", "StaticVertexGrid"]
