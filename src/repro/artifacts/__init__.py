"""Persistent preprocessing artifacts (the paper's offline phase, on disk).

See :mod:`repro.artifacts.store` for the content-addressed store and
``docs/PERFORMANCE.md`` ("Artifact store & parallel sweeps") for the
cache layout, environment variables and invalidation rules.
"""

from .store import (
    ARTIFACT_DIR_ENV,
    SCHEMA_VERSION,
    Artifact,
    ArtifactStore,
    canonical_json,
    default_root,
    get_store,
    reset_stats,
    stats,
)

__all__ = [
    "ARTIFACT_DIR_ENV",
    "SCHEMA_VERSION",
    "Artifact",
    "ArtifactStore",
    "canonical_json",
    "default_root",
    "get_store",
    "reset_stats",
    "stats",
]
