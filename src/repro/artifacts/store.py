"""Content-addressed on-disk store for scenario preprocessing artifacts.

The paper treats index construction — all-pairs shortest paths, the
bipartite map partitioning, the landmark graph, transition mining —
as an *offline* phase feeding the online dispatcher.  This module gives
that phase a home on disk: every expensive preprocessing product is
persisted once, keyed by a deterministic hash of the *spec that
generates it* (generator parameters, seeds, method parameters and a
code schema version), so any later process — including every worker of
a parallel sweep — loads in milliseconds what it would otherwise
recompute in seconds.

Layout (one directory per artifact)::

    <root>/<kind>/<key[:2]>/<key>/
        meta.json          # the generating spec + schema version
        <name>.npy         # one file per named array

Arrays are loaded with ``numpy``'s ``mmap_mode="r"`` by default, so the
big matrices (the full APSP distance/predecessor tables) are mapped
zero-copy: concurrent sweep workers share the page cache instead of
each materialising a private copy.

The root directory defaults to ``~/.cache/repro-mtshare`` and is
overridden by the ``REPRO_ARTIFACT_DIR`` environment variable; setting
it to ``off`` (or ``none``/``0``) disables the store entirely, in which
case every consumer silently falls back to in-process computation.

Writes are atomic (temp directory + ``os.replace``), so concurrent
processes racing to persist the same artifact are safe: both compute,
one rename wins, and readers only ever see complete artifacts.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

#: Bump when the on-disk format or the semantics of any persisted
#: artifact change; it participates in every key, so a version bump
#: cleanly invalidates all previously stored artifacts.
SCHEMA_VERSION = 1

#: Environment variable overriding the store location (``off`` disables).
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: Values of :data:`ARTIFACT_DIR_ENV` that disable the store.
_DISABLED_VALUES = frozenset({"off", "none", "disabled", "0"})


def default_root() -> str:
    """The default store location (``~/.cache/repro-mtshare``)."""
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-mtshare")


def _canonical(obj: Any) -> Any:
    """Normalise a spec value into deterministic JSON-compatible types."""
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (set, frozenset)):
        return [_canonical(v) for v in sorted(obj)]
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        return obj
    raise TypeError(f"unsupported spec value of type {type(obj).__name__}: {obj!r}")


def canonical_json(spec: Mapping) -> str:
    """Deterministic JSON encoding of a spec mapping (sorted keys)."""
    return json.dumps(_canonical(spec), sort_keys=True, separators=(",", ":"))


@dataclass
class Artifact:
    """One loaded artifact: named arrays plus its meta mapping."""

    kind: str
    key: str
    arrays: dict[str, np.ndarray]
    meta: dict = field(default_factory=dict)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]


class ArtifactStore:
    """A content-addressed artifact directory.

    Per-process counters (``loads``/``misses``/``builds`` per kind)
    feed the observability layer and the warm-store acceptance checks:
    a process that found everything it needed reports zero ``builds``.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self._stats: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    def _kind_stats(self, kind: str) -> dict[str, int]:
        st = self._stats.get(kind)
        if st is None:
            st = self._stats[kind] = {
                "loads": 0, "misses": 0, "builds": 0, "mmap_loads": 0,
            }
        return st

    def key_of(self, kind: str, spec: Mapping) -> str:
        """Deterministic key: sha256 over kind + schema version + spec."""
        payload = canonical_json({
            "kind": kind,
            "schema": SCHEMA_VERSION,
            "spec": spec,
        })
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    def _dir_of(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / key

    def contains(self, kind: str, key: str) -> bool:
        """Whether a complete artifact exists for ``(kind, key)``."""
        return (self._dir_of(kind, key) / "meta.json").is_file()

    # ------------------------------------------------------------------
    def load(self, kind: str, key: str, mmap: bool = True) -> Artifact | None:
        """Load an artifact, or ``None`` on miss (or corruption).

        With ``mmap=True`` (default) arrays come back memory-mapped
        read-only; treat them as immutable (copy before mutating).
        """
        path = self._dir_of(kind, key)
        st = self._kind_stats(kind)
        meta_path = path / "meta.json"
        if not meta_path.is_file():
            st["misses"] += 1
            return None
        try:
            meta = json.loads(meta_path.read_text())
            arrays: dict[str, np.ndarray] = {}
            for name in meta.get("__arrays__", ()):
                arr = np.load(path / f"{name}.npy", mmap_mode="r" if mmap else None)
                arrays[name] = arr
        except (OSError, ValueError, json.JSONDecodeError):
            # A torn or stale-format artifact reads as a miss; the
            # caller rebuilds and the save overwrites it.
            st["misses"] += 1
            return None
        st["loads"] += 1
        if mmap:
            st["mmap_loads"] += 1
        meta = {k: v for k, v in meta.items() if k != "__arrays__"}
        return Artifact(kind=kind, key=key, arrays=arrays, meta=meta)

    def save(
        self,
        kind: str,
        key: str,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping | None = None,
    ) -> None:
        """Persist an artifact atomically; counts as one ``build``.

        Safe under concurrent writers: the artifact is assembled in a
        temp directory and renamed into place; a loser of the race
        discards its copy (the winner's content is identical by
        construction — keys are content-determining).
        """
        self._kind_stats(kind)["builds"] += 1
        final = self._dir_of(kind, key)
        if (final / "meta.json").is_file():
            return
        tmp = self.root / "tmp" / f"{key}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        tmp.mkdir(parents=True, exist_ok=True)
        try:
            payload = dict(meta or {})
            payload["__arrays__"] = sorted(arrays)
            for name, arr in arrays.items():
                np.save(tmp / f"{name}.npy", np.ascontiguousarray(arr))
            (tmp / "meta.json").write_text(json.dumps(payload, sort_keys=True))
            final.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(tmp, final)
            except OSError:
                # Lost the race (target exists) — keep the winner's copy.
                if not (final / "meta.json").is_file():
                    raise
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, dict[str, int]]:
        """Per-kind load/miss/build counters for this process."""
        return {kind: dict(st) for kind, st in self._stats.items()}

    def reset_stats(self) -> None:
        """Zero the per-process counters (tests)."""
        self._stats.clear()

    def info(self) -> dict[str, dict[str, int]]:
        """On-disk inventory: artifact count and bytes per kind."""
        out: dict[str, dict[str, int]] = {}
        if not self.root.is_dir():
            return out
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir() or kind_dir.name == "tmp":
                continue
            count = 0
            nbytes = 0
            for meta in sorted(kind_dir.glob("*/*/meta.json")):
                count += 1
                nbytes += sum(
                    f.stat().st_size for f in sorted(meta.parent.iterdir()) if f.is_file()
                )
            out[kind_dir.name] = {"artifacts": count, "bytes": nbytes}
        return out

    def entries(self, kind: str) -> list[dict]:
        """Per-artifact detail of one kind: key, metadata, on-disk bytes.

        Sorted by key for deterministic listings; unreadable metadata is
        skipped (corrupt artifacts already count as load misses).  Used
        by ``repro cache info`` to describe e.g. stored contraction
        hierarchies (graph label, vertex count, size).
        """
        out: list[dict] = []
        kind_dir = self.root / kind
        if not kind_dir.is_dir():
            return out
        for meta_path in sorted(kind_dir.glob("*/*/meta.json")):
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            nbytes = sum(
                f.stat().st_size
                for f in sorted(meta_path.parent.iterdir())
                if f.is_file()
            )
            out.append(
                {
                    "key": meta_path.parent.name,
                    "bytes": nbytes,
                    "meta": {k: v for k, v in meta.items() if k != "__arrays__"},
                }
            )
        return out

    def clear(self) -> int:
        """Delete every stored artifact; returns the number removed."""
        removed = sum(v["artifacts"] for v in self.info().values())
        if self.root.is_dir():
            shutil.rmtree(self.root, ignore_errors=True)
        return removed


# ----------------------------------------------------------------------
# process-wide store resolution
# ----------------------------------------------------------------------
_STORES: dict[str, ArtifactStore] = {}


def get_store() -> ArtifactStore | None:
    """The active store per :data:`ARTIFACT_DIR_ENV`, or ``None`` when off.

    The environment is consulted on every call (tests and the sweep
    harness redirect it), but store objects — and their per-process
    counters — are reused per resolved root.
    """
    raw = os.environ.get(ARTIFACT_DIR_ENV, "").strip()
    if raw.lower() in _DISABLED_VALUES:
        return None
    root = raw or default_root()
    store = _STORES.get(root)
    if store is None:
        store = _STORES[root] = ArtifactStore(root)
    return store


def stats() -> dict[str, dict[str, int]]:
    """Merged per-kind counters across every store touched by this process."""
    merged: dict[str, dict[str, int]] = {}
    for store in _STORES.values():
        for kind, st in store.stats().items():
            agg = merged.setdefault(
                kind, {"loads": 0, "misses": 0, "builds": 0, "mmap_loads": 0}
            )
            for k, v in st.items():
                agg[k] += v
    return merged


def reset_stats() -> None:
    """Zero every store's per-process counters (tests)."""
    for store in _STORES.values():
        store.reset_stats()
