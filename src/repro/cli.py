"""Command-line interface: run simulations and regenerate paper figures.

Exposed as ``python -m repro``.  Four subcommands:

``simulate``
    Run one scheme on one scenario and print the metric summary.
``experiment``
    Regenerate one of the paper's tables/figures (or an ablation) and
    print its rows; ``--workers N`` (or ``REPRO_WORKERS``) fans the
    underlying simulations out over worker processes.
``cache``
    Inspect, warm, or clear the persistent preprocessing artifact
    store (see :mod:`repro.artifacts`).
``list``
    List the available schemes, experiments and ablations.
``lint``
    Run the project's determinism/invariant static analysis
    (see :mod:`repro.analysis` and ``docs/STATIC_ANALYSIS.md``).
``replay``
    Stream a JSONL request trace through the dispatch service façade
    and print the final metrics (see :mod:`repro.service`).
``serve``
    Expose one simulator run as an HTTP dispatch endpoint.
"""

from __future__ import annotations

import argparse
import sys

from . import artifacts
from .core.payment import PaymentModel
from .experiments.ablations import ALL_ABLATIONS
from .experiments.figures import ALL_EXPERIMENTS, NON_RUN_FIGURES, figure_run_keys
from .experiments.reporting import observability_table
from .experiments.runner import bench_scale, collect_keys, default_workers, run_many
from .sim.engine import Simulator
from .sim.scenario import SCHEME_NAMES, SCHEME_REGISTRY, ScenarioSpec, get_scenario

#: Ablations that drive the simulator directly instead of going through
#: ``runner.run`` — a planning pass over them would execute real work.
NON_RUN_ABLATIONS = frozenset({"redispatch"})


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="mT-Share reproduction: simulate ridesharing or regenerate paper figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one scheme on one scenario")
    sim.add_argument("--scheme", choices=SCHEME_NAMES, default="mt-share")
    sim.add_argument("--kind", choices=("peak", "nonpeak"), default="peak")
    sim.add_argument("--taxis", type=int, default=100)
    sim.add_argument("--capacity", type=int, default=3)
    sim.add_argument("--rho", type=float, default=1.3)
    sim.add_argument("--window", type=float, default=None, metavar="SECONDS",
                     help="dispatch-window length W for the window-lap "
                          "scheme (0 reproduces greedy decisions exactly; "
                          "default: the config's dispatch_window_s)")
    sim.add_argument("--requests", type=int, default=600,
                     help="expected busiest-hour request volume")
    sim.add_argument("--grid", type=int, default=16,
                     help="network grid side (vertices per side)")
    sim.add_argument("--partitions", type=int, default=25)
    sim.add_argument("--congestion", type=float, default=1.0,
                     help="speed factor; < 1 slows traffic")
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--sp-mode", choices=("auto", "full", "lazy", "ch"),
                     default="auto",
                     help="shortest-path backend (auto resolves against "
                          "REPRO_SP_MODE, then full below/ch above the "
                          "dense-matrix vertex limit)")
    sim.add_argument("--trace", metavar="PATH", default=None,
                     help="append a structured JSONL event trace (stage "
                          "timings, dispatches, offline encounters) to PATH")
    sim.add_argument("--faults", metavar="SPEC", default=None,
                     help="inject deterministic faults; SPEC is "
                          "key=value[,key=value...] with keys seed, "
                          "breakdown_rate, cancel_rate, shock_windows, "
                          "shock_delay_s, shock_duration_s, "
                          "shock_radius_frac, continuation_rho, "
                          "continuation_wait_s (see docs/ROBUSTNESS.md)")
    sim.add_argument("--rebalance", metavar="SPEC", default=None,
                     help="proactively reposition surplus idle taxis "
                          "toward predicted-demand deficit zones; SPEC is "
                          "'on', 'off' or key=value[,key=value...] with "
                          "keys cadence_s, lead_s, max_moves, min_surplus, "
                          "max_cruise_s (see docs/ALGORITHMS.md)")

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(list(ALL_EXPERIMENTS) + list(ALL_ABLATIONS)))
    exp.add_argument("--workers", type=int, default=None,
                     help="parallel sweep workers (default: REPRO_WORKERS or 1)")

    cache = sub.add_parser("cache", help="manage the preprocessing artifact store")
    cache.add_argument("action", choices=("info", "warm", "clear"))
    cache.add_argument("--experiments", nargs="*", default=None, metavar="NAME",
                       help="experiments to warm artifacts for (default: all figures)")
    cache.add_argument("--ch-grid", type=int, default=None, metavar="SIDE",
                       help="warm: pre-build the contraction hierarchy for a "
                            "SIDE x SIDE scenario network instead of warming "
                            "experiment artifacts")
    cache.add_argument("--kind", choices=("peak", "nonpeak"), default="peak",
                       help="scenario kind for --ch-grid")
    cache.add_argument("--spacing", type=float, default=180.0,
                       help="grid spacing in metres for --ch-grid")
    cache.add_argument("--seed", type=int, default=7,
                       help="scenario seed for --ch-grid")

    sub.add_parser("list", help="list schemes, experiments, ablations")

    # "lint" is registered for --help discoverability only; main()
    # forwards its argv to the repro.analysis engine before parsing.
    sub.add_parser("lint", help="run the determinism/invariant lint",
                   add_help=False)

    def _service_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scheme", choices=SCHEME_NAMES, default="mt-share")
        p.add_argument("--kind", choices=("peak", "nonpeak"), default="peak")
        p.add_argument("--taxis", type=int, default=100)
        p.add_argument("--capacity", type=int, default=3)
        p.add_argument("--rho", type=float, default=1.3)
        p.add_argument("--grid", type=int, default=16)
        p.add_argument("--requests", type=int, default=200,
                       help="scenario shaping only (demand history for the "
                            "predictive indexes); the workload itself "
                            "arrives through the service")
        p.add_argument("--partitions", type=int, default=25)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--sp-mode", choices=("auto", "full", "lazy", "ch"),
                       default="auto",
                       help="shortest-path backend (see `repro simulate -h`)")
        p.add_argument("--max-in-flight", type=int, default=4096,
                       help="admission backpressure bound on queued requests")
        p.add_argument("--late-policy", choices=("reject", "clamp"), default="reject",
                       help="requests released behind the committed clock")
        p.add_argument("--compact", action="store_true",
                       help="bounded-memory mode for soak-length streams")

    rep = sub.add_parser("replay", help="stream a JSONL request trace "
                                        "through the dispatch service")
    rep.add_argument("trace", metavar="TRACE.jsonl",
                     help="request trace, one JSON object per line")
    _service_args(rep)
    rep.add_argument("--pump-every", type=int, default=1, metavar="K",
                     help="dispatch queued events after every K admitted "
                          "requests (0 defers everything to the drain)")
    rep.add_argument("--decisions", metavar="PATH", default=None,
                     help="append the decision stream to PATH as JSONL")

    srv = sub.add_parser("serve", help="expose a simulator run over HTTP")
    _service_args(srv)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8350)
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = ScenarioSpec(
        kind=args.kind,
        grid_rows=args.grid,
        grid_cols=args.grid,
        hourly_requests=args.requests,
        history_days=3,
        num_partitions=args.partitions,
        congestion=args.congestion,
        seed=args.seed,
        sp_mode=args.sp_mode,
    )
    scenario = get_scenario(spec)
    overrides = {"rho": args.rho, "capacity": args.capacity}
    if args.window is not None:
        overrides["dispatch_window_s"] = args.window
    config = scenario.default_config(**overrides)
    scheme = scenario.make_scheme(args.scheme, config=config)
    requests = scenario.requests(rho=args.rho)
    fleet = scenario.make_fleet(args.taxis, capacity=args.capacity)
    try:
        faults = scenario.fault_plan(args.faults, fleet, requests)
    except ValueError as exc:
        print(f"error: bad --faults spec: {exc}", file=sys.stderr)
        return 2
    try:
        rebalance = scenario.rebalance_policy(args.rebalance, config)
    except ValueError as exc:
        print(f"error: bad --rebalance spec: {exc}", file=sys.stderr)
        return 2
    print(
        f"Simulating {scheme.name}: {len(requests)} requests, "
        f"{args.taxis} taxis, {scenario.network.num_vertices} vertices"
        + (f", {faults.num_events} fault events" if faults is not None else "")
        + (", rebalancing on" if rebalance is not None else "")
    )
    try:
        sim = Simulator(
            scheme, fleet, requests, payment=PaymentModel(),
            trace_path=args.trace, faults=faults, rebalance=rebalance,
        )
    except OSError as exc:
        print(f"error: cannot open trace file: {exc}", file=sys.stderr)
        return 2
    metrics = sim.run()
    for key, value in metrics.summary().items():
        print(f"  {key:18s} {value}")
    table = observability_table(metrics)
    if table is not None:
        table.print()
    if args.trace:
        print(f"\nJSONL event trace written to {args.trace}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    fn = ALL_EXPERIMENTS.get(args.name, ALL_ABLATIONS.get(args.name))
    scale = bench_scale()
    workers = args.workers if args.workers is not None else default_workers()
    plannable = args.name not in NON_RUN_FIGURES and args.name not in NON_RUN_ABLATIONS
    if workers > 1 and plannable:
        keys = collect_keys(fn, scale)
        print(f"Sweeping {len(keys)} runs across {workers} workers...")
        run_many(keys, workers=workers)
    result = fn(scale)
    result.print()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = artifacts.get_store()
    if store is None:
        print(f"artifact store disabled ({artifacts.ARTIFACT_DIR_ENV} is 'off')")
        return 0 if args.action == "info" else 1
    if args.action == "info":
        print(f"artifact store: {store.root}")
        info = store.info()
        if not info:
            print("  (empty)")
        total = 0
        for kind, row in info.items():
            total += row["bytes"]
            print(f"  {kind:10s} {row['artifacts']:4d} artifacts  {row['bytes'] / 1e6:8.2f} MB")
        if info:
            print(f"  {'total':10s} {sum(r['artifacts'] for r in info.values()):4d} artifacts"
                  f"  {total / 1e6:8.2f} MB")
        hierarchies = store.entries("ch")
        if hierarchies:
            print("\ncontraction hierarchies:")
            for row in hierarchies:
                meta = row["meta"]
                label = meta.get("label", row["key"])
                print(
                    f"  {label:40s} {meta.get('vertices', '?'):>8} vertices"
                    f"  {meta.get('shortcuts', '?'):>8} shortcuts"
                    f"  {row['bytes'] / 1e6:8.2f} MB"
                )
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.root}")
        return 0
    if args.ch_grid is not None:
        # warm --ch-grid: pre-build (or touch) one scenario's hierarchy.
        spec = ScenarioSpec(
            kind=args.kind,
            grid_rows=args.ch_grid,
            grid_cols=args.ch_grid,
            spacing_m=args.spacing,
            seed=args.seed,
            sp_mode="ch",
        )
        print(f"Warming contraction hierarchy for {args.ch_grid}x{args.ch_grid} "
              f"{args.kind} scenario (seed {args.seed})...")
        scenario = get_scenario(spec)
        hierarchy = scenario.engine.hierarchy
        assert hierarchy is not None
        state = "built" if scenario.engine.ch_built else "already stored"
        print(f"  {scenario.network_label()}: {hierarchy.num_vertices} vertices, "
              f"{hierarchy.num_shortcuts} shortcuts ({state})")
        for kind, row in store.info().items():
            print(f"  {kind:10s} {row['artifacts']:4d} artifacts  {row['bytes'] / 1e6:8.2f} MB")
        return 0
    # warm: build (or touch) every artifact the selected experiments need.
    names = args.experiments or None
    keys = figure_run_keys(names)
    specs = {k.spec for k in keys}
    print(f"Warming artifacts for {len(keys)} runs ({len(specs)} scenarios)...")
    from .experiments.runner import _warm_store

    _warm_store(keys)
    for kind, row in store.info().items():
        print(f"  {kind:10s} {row['artifacts']:4d} artifacts  {row['bytes'] / 1e6:8.2f} MB")
    return 0


def _make_service(args: argparse.Namespace) -> "DispatchService":
    """Build a DispatchService from the shared service CLI flags."""
    from .service import AdmissionPolicy, DispatchService, ServiceConfig

    spec = ScenarioSpec(
        kind=args.kind,
        grid_rows=args.grid,
        grid_cols=args.grid,
        hourly_requests=args.requests,
        history_days=3,
        num_partitions=args.partitions,
        seed=args.seed,
        sp_mode=args.sp_mode,
    )
    scenario = get_scenario(spec)
    config = scenario.default_config(rho=args.rho, capacity=args.capacity)
    scheme = scenario.make_scheme(args.scheme, config=config)
    fleet = scenario.make_fleet(args.taxis, capacity=args.capacity)
    sim = Simulator(
        scheme, fleet, [], payment=PaymentModel(), compact=args.compact
    )
    policy = AdmissionPolicy(
        max_in_flight=args.max_in_flight, late_policy=args.late_policy
    )
    return DispatchService(sim, ServiceConfig(admission=policy))


def _cmd_replay(args: argparse.Namespace) -> int:
    import json as _json

    from .service import decision_to_dict, jsonl_requests

    service = _make_service(args)
    sink_file = open(args.decisions, "a", encoding="utf-8") if args.decisions else None
    if sink_file is not None:
        service.set_sink(
            lambda d: sink_file.write(_json.dumps(decision_to_dict(d)) + "\n")
        )
    else:
        service.set_sink(lambda d: None)  # replay prints totals, not a stream
    pump_every = args.pump_every if args.pump_every > 0 else None
    try:
        metrics = service.replay(jsonl_requests(args.trace), pump_every=pump_every)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if sink_file is not None:
            sink_file.close()
    print(
        f"Replayed {service.submitted} requests "
        f"({service.admitted} admitted, {service.submitted - service.admitted} rejected)"
    )
    for reason, count in sorted(service.rejections.items()):
        print(f"  rejected[{reason}]: {count}")
    for key, value in metrics.summary().items():
        print(f"  {key:18s} {value}")
    if args.decisions:
        print(f"\nJSONL decision stream written to {args.decisions}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.http import make_server

    service = _make_service(args)
    try:
        server, _state = make_server(service, host=args.host, port=args.port)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    print(f"dispatch service on http://{host}:{port}  "
          "(POST /requests, GET /metrics, POST /finish; Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
    return 0


def _cmd_list() -> int:
    print("schemes:")
    for info in SCHEME_REGISTRY.values():
        print(f"  {info.key:13s} {info.summary}")
    print("experiments :", ", ".join(sorted(ALL_EXPERIMENTS)))
    print("ablations   :", ", ".join(sorted(ALL_ABLATIONS)))
    print("\nSet REPRO_BENCH_SCALE=full for paper-shaped sweeps.")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "lint":
        # Forward everything after "lint" untouched so the analysis
        # engine owns its own flags (--baseline, --format, ...).
        from .analysis import main as lint_main

        return lint_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_list()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
