"""Command-line interface: run simulations and regenerate paper figures.

Exposed as ``python -m repro``.  Four subcommands:

``simulate``
    Run one scheme on one scenario and print the metric summary.
``experiment``
    Regenerate one of the paper's tables/figures (or an ablation) and
    print its rows; ``--workers N`` (or ``REPRO_WORKERS``) fans the
    underlying simulations out over worker processes.
``cache``
    Inspect, warm, or clear the persistent preprocessing artifact
    store (see :mod:`repro.artifacts`).
``list``
    List the available schemes, experiments and ablations.
``lint``
    Run the project's determinism/invariant static analysis
    (see :mod:`repro.analysis` and ``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

import argparse
import sys

from . import artifacts
from .core.payment import PaymentModel
from .experiments.ablations import ALL_ABLATIONS
from .experiments.figures import ALL_EXPERIMENTS, NON_RUN_FIGURES, figure_run_keys
from .experiments.reporting import observability_table
from .experiments.runner import bench_scale, collect_keys, default_workers, run_many
from .sim.engine import Simulator
from .sim.scenario import SCHEME_NAMES, ScenarioSpec, get_scenario

#: Ablations that drive the simulator directly instead of going through
#: ``runner.run`` — a planning pass over them would execute real work.
NON_RUN_ABLATIONS = frozenset({"redispatch"})


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="mT-Share reproduction: simulate ridesharing or regenerate paper figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one scheme on one scenario")
    sim.add_argument("--scheme", choices=SCHEME_NAMES, default="mt-share")
    sim.add_argument("--kind", choices=("peak", "nonpeak"), default="peak")
    sim.add_argument("--taxis", type=int, default=100)
    sim.add_argument("--capacity", type=int, default=3)
    sim.add_argument("--rho", type=float, default=1.3)
    sim.add_argument("--requests", type=int, default=600,
                     help="expected busiest-hour request volume")
    sim.add_argument("--grid", type=int, default=16,
                     help="network grid side (vertices per side)")
    sim.add_argument("--partitions", type=int, default=25)
    sim.add_argument("--congestion", type=float, default=1.0,
                     help="speed factor; < 1 slows traffic")
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--trace", metavar="PATH", default=None,
                     help="append a structured JSONL event trace (stage "
                          "timings, dispatches, offline encounters) to PATH")
    sim.add_argument("--faults", metavar="SPEC", default=None,
                     help="inject deterministic faults; SPEC is "
                          "key=value[,key=value...] with keys seed, "
                          "breakdown_rate, cancel_rate, shock_windows, "
                          "shock_delay_s, shock_duration_s, "
                          "shock_radius_frac, continuation_rho, "
                          "continuation_wait_s (see docs/ROBUSTNESS.md)")

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(list(ALL_EXPERIMENTS) + list(ALL_ABLATIONS)))
    exp.add_argument("--workers", type=int, default=None,
                     help="parallel sweep workers (default: REPRO_WORKERS or 1)")

    cache = sub.add_parser("cache", help="manage the preprocessing artifact store")
    cache.add_argument("action", choices=("info", "warm", "clear"))
    cache.add_argument("--experiments", nargs="*", default=None, metavar="NAME",
                       help="experiments to warm artifacts for (default: all figures)")

    sub.add_parser("list", help="list schemes, experiments, ablations")

    # "lint" is registered for --help discoverability only; main()
    # forwards its argv to the repro.analysis engine before parsing.
    sub.add_parser("lint", help="run the determinism/invariant lint",
                   add_help=False)
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = ScenarioSpec(
        kind=args.kind,
        grid_rows=args.grid,
        grid_cols=args.grid,
        hourly_requests=args.requests,
        history_days=3,
        num_partitions=args.partitions,
        congestion=args.congestion,
        seed=args.seed,
    )
    scenario = get_scenario(spec)
    config = scenario.default_config(rho=args.rho, capacity=args.capacity)
    scheme = scenario.make_scheme(args.scheme, config=config)
    requests = scenario.requests(rho=args.rho)
    fleet = scenario.make_fleet(args.taxis, capacity=args.capacity)
    try:
        faults = scenario.fault_plan(args.faults, fleet, requests)
    except ValueError as exc:
        print(f"error: bad --faults spec: {exc}", file=sys.stderr)
        return 2
    print(
        f"Simulating {scheme.name}: {len(requests)} requests, "
        f"{args.taxis} taxis, {scenario.network.num_vertices} vertices"
        + (f", {faults.num_events} fault events" if faults is not None else "")
    )
    try:
        sim = Simulator(
            scheme, fleet, requests, payment=PaymentModel(),
            trace_path=args.trace, faults=faults,
        )
    except OSError as exc:
        print(f"error: cannot open trace file: {exc}", file=sys.stderr)
        return 2
    metrics = sim.run()
    for key, value in metrics.summary().items():
        print(f"  {key:18s} {value}")
    table = observability_table(metrics)
    if table is not None:
        table.print()
    if args.trace:
        print(f"\nJSONL event trace written to {args.trace}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    fn = ALL_EXPERIMENTS.get(args.name, ALL_ABLATIONS.get(args.name))
    scale = bench_scale()
    workers = args.workers if args.workers is not None else default_workers()
    plannable = args.name not in NON_RUN_FIGURES and args.name not in NON_RUN_ABLATIONS
    if workers > 1 and plannable:
        keys = collect_keys(fn, scale)
        print(f"Sweeping {len(keys)} runs across {workers} workers...")
        run_many(keys, workers=workers)
    result = fn(scale)
    result.print()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = artifacts.get_store()
    if store is None:
        print(f"artifact store disabled ({artifacts.ARTIFACT_DIR_ENV} is 'off')")
        return 0 if args.action == "info" else 1
    if args.action == "info":
        print(f"artifact store: {store.root}")
        info = store.info()
        if not info:
            print("  (empty)")
        total = 0
        for kind, row in info.items():
            total += row["bytes"]
            print(f"  {kind:10s} {row['artifacts']:4d} artifacts  {row['bytes'] / 1e6:8.2f} MB")
        if info:
            print(f"  {'total':10s} {sum(r['artifacts'] for r in info.values()):4d} artifacts"
                  f"  {total / 1e6:8.2f} MB")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.root}")
        return 0
    # warm: build (or touch) every artifact the selected experiments need.
    names = args.experiments or None
    keys = figure_run_keys(names)
    specs = {k.spec for k in keys}
    print(f"Warming artifacts for {len(keys)} runs ({len(specs)} scenarios)...")
    from .experiments.runner import _warm_store

    _warm_store(keys)
    for kind, row in store.info().items():
        print(f"  {kind:10s} {row['artifacts']:4d} artifacts  {row['bytes'] / 1e6:8.2f} MB")
    return 0


def _cmd_list() -> int:
    print("schemes     :", ", ".join(SCHEME_NAMES))
    print("experiments :", ", ".join(sorted(ALL_EXPERIMENTS)))
    print("ablations   :", ", ".join(sorted(ALL_ABLATIONS)))
    print("\nSet REPRO_BENCH_SCALE=full for paper-shaped sweeps.")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "lint":
        # Forward everything after "lint" untouched so the analysis
        # engine owns its own flags (--baseline, --format, ...).
        from .analysis import main as lint_main

        return lint_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "cache":
        return _cmd_cache(args)
    return _cmd_list()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
