"""Landmarks and the landmark graph (Definitions 7 and 8 of the paper).

Each map partition is summarised by a *landmark*: the member vertex with
the minimum total shortest-path distance to all other members (a graph
medoid).  The *landmark graph* ``G_l`` connects landmarks of adjacent
partitions and carries pairwise landmark travel costs; partition
filtering (Algorithm 2) and probabilistic routing (Algorithm 4) both
operate on it instead of the full road graph.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .graph import RoadNetwork
from .shortest_path import ShortestPathEngine


class LandmarkGraph:
    """Landmarks, their pairwise costs, and partition adjacency.

    Parameters
    ----------
    network:
        The underlying road network.
    partitions:
        A list of vertex-id lists; every vertex of the network must
        appear in exactly one partition.
    engine:
        Shortest-path engine on ``network`` used to pick medoids and to
        fill the landmark-to-landmark cost matrix.
    """

    def __init__(
        self,
        network: RoadNetwork,
        partitions: Sequence[Sequence[int]],
        engine: ShortestPathEngine,
    ) -> None:
        if engine.network is not network:
            raise ValueError("engine must be built on the same network")
        n = network.num_vertices
        seen = np.zeros(n, dtype=bool)
        for part in partitions:
            for v in part:
                if seen[v]:
                    raise ValueError(f"vertex {v} appears in multiple partitions")
                seen[v] = True
        if not seen.all():
            missing = int(np.flatnonzero(~seen)[0])
            raise ValueError(f"vertex {missing} is not covered by any partition")

        self._network = network
        self._engine = engine
        self._partitions = [list(part) for part in partitions]
        self._partition_of = np.empty(n, dtype=np.int64)
        for z, part in enumerate(self._partitions):
            for v in part:
                self._partition_of[v] = z

        self._landmarks = [self._medoid(part) for part in self._partitions]
        self._centroids = np.array(
            [network.xy[part].mean(axis=0) for part in self._partitions]
        )
        self._radii = np.array(
            [
                float(np.max(np.hypot(*(network.xy[part] - c).T)))
                for part, c in zip(self._partitions, self._centroids)
            ]
        )
        self._adjacency = self._build_adjacency()
        self._landmark_cost = self._build_landmark_costs()
        self._radii_list: list[float] = self._radii.tolist()
        # (x, y) -> centroid distances as a plain list; the disc test
        # is then a tiny scalar sweep instead of a fixed-cost numpy
        # kernel (kappa is small and query centres are vertex
        # coordinates, so the hit rate is high).
        self._disc_cache: dict[tuple[float, float], list[float]] = {}

    # ------------------------------------------------------------------
    # artifact-store serialisation
    # ------------------------------------------------------------------
    def to_tables(self) -> dict[str, np.ndarray]:
        """The landmark tables as named arrays for the artifact store.

        Adjacency rows are flattened CSR-style (``adj_indptr`` +
        ``adj_indices``, neighbours sorted per row) so the round trip is
        deterministic.
        """
        indptr = np.zeros(len(self._partitions) + 1, dtype=np.int64)
        rows: list[int] = []
        for z, neigh in enumerate(self._adjacency):
            ordered = sorted(neigh)
            rows.extend(ordered)
            indptr[z + 1] = indptr[z] + len(ordered)
        return {
            "landmarks": np.asarray(self._landmarks, dtype=np.int64),
            "centroids": self._centroids,
            "radii": self._radii,
            "partition_of": self._partition_of,
            "landmark_cost": self._landmark_cost,
            "adj_indptr": indptr,
            "adj_indices": np.asarray(rows, dtype=np.int64),
        }

    @classmethod
    def from_tables(
        cls,
        network: RoadNetwork,
        partitions: Sequence[Sequence[int]],
        tables: dict[str, np.ndarray],
    ) -> "LandmarkGraph":
        """Rebuild a landmark graph from stored tables without an engine.

        The tables must have been produced by :meth:`to_tables` on the
        same network/partitioning; behaviour is bit-identical to a fresh
        build because every derived structure is restored verbatim.
        """
        self = cls.__new__(cls)
        self._network = network
        self._engine = None  # only needed at build time
        self._partitions = [list(part) for part in partitions]
        self._partition_of = np.asarray(tables["partition_of"], dtype=np.int64).copy()
        self._landmarks = [int(v) for v in np.asarray(tables["landmarks"])]
        self._centroids = np.asarray(tables["centroids"], dtype=np.float64).copy()
        self._radii = np.asarray(tables["radii"], dtype=np.float64).copy()
        indptr = np.asarray(tables["adj_indptr"], dtype=np.int64)
        indices = np.asarray(tables["adj_indices"], dtype=np.int64)
        self._adjacency = [
            tuple(int(v) for v in indices[indptr[z]:indptr[z + 1]])
            for z in range(len(self._partitions))
        ]
        self._landmark_cost = np.asarray(tables["landmark_cost"], dtype=np.float64).copy()
        self._radii_list = self._radii.tolist()
        self._disc_cache = {}
        return self

    # ------------------------------------------------------------------
    def _medoid(self, part: Sequence[int]) -> int:
        """Member vertex minimising total distance to other members."""
        if len(part) == 1:
            return int(part[0])
        if self._engine.mode == "full":
            idx = np.asarray(part)
            # Full matrix available: slice and sum (inf-safe).
            sub = self._engine._dist[np.ix_(idx, idx)]  # noqa: SLF001 - same package
            sub = np.where(np.isfinite(sub), sub, np.nanmax(sub[np.isfinite(sub)], initial=0.0) * 2 + 1)
            return int(idx[np.argmin(sub.sum(axis=1))])
        # Lazy mode: fall back to the Euclidean medoid, a standard
        # approximation that avoids |P| single-source searches.
        pts = self._network.xy[list(part)]
        c = pts.mean(axis=0)
        return int(part[int(np.argmin(np.hypot(*(pts - c).T)))])

    def _build_adjacency(self) -> list[tuple[int, ...]]:
        adjacency: list[set[int]] = [set() for _ in self._partitions]
        part_of = self._partition_of
        for u, v, _length in self._network.edges():
            pu, pv = int(part_of[u]), int(part_of[v])
            if pu != pv:
                adjacency[pu].add(pv)
                adjacency[pv].add(pu)
        # Sorted tuples, not sets: corridor enumeration in probabilistic
        # routing iterates these rows under a path budget, so their order
        # is decision-relevant.  A sorted tuple makes the order explicit
        # and identical to the CSR layout :meth:`from_tables` restores,
        # so cold and store-warmed runs take identical corridors.
        return [tuple(sorted(neigh)) for neigh in adjacency]

    def _build_landmark_costs(self) -> np.ndarray:
        # One batched many-to-many query instead of kappa single-source
        # trees: full/lazy modes slice or gather exactly the same rows
        # (values bit-identical to the old per-landmark loop), and the
        # ch backend answers it with one bucket-based sweep instead of
        # kappa full Dijkstras (see repro.network.ch).
        return np.asarray(
            self._engine.cost_matrix(self._landmarks, self._landmarks),
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Number of partitions ``kappa``."""
        return len(self._partitions)

    @property
    def partitions(self) -> list[list[int]]:
        """Vertex lists per partition (copies are not made; do not mutate)."""
        return self._partitions

    @property
    def landmarks(self) -> list[int]:
        """Landmark vertex id of every partition."""
        return list(self._landmarks)

    def landmark(self, z: int) -> int:
        """Landmark vertex of partition ``z``."""
        return self._landmarks[z]

    def landmark_xy(self, z: int) -> tuple[float, float]:
        """Planar coordinates of partition ``z``'s landmark vertex."""
        x, y = self._network.xy[self._landmarks[z]]
        return float(x), float(y)

    def partition_of(self, v: int) -> int:
        """Partition id containing vertex ``v``."""
        return int(self._partition_of[v])

    def partition_of_many(self, vertices: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`partition_of`."""
        return self._partition_of[np.asarray(vertices, dtype=np.int64)]

    def members(self, z: int) -> list[int]:
        """Vertices of partition ``z``."""
        return self._partitions[z]

    def centroid(self, z: int) -> np.ndarray:
        """Planar centroid of partition ``z``."""
        return self._centroids[z]

    @property
    def centroids(self) -> np.ndarray:
        """``(kappa, 2)`` array of partition centroids."""
        return self._centroids

    def radius(self, z: int) -> float:
        """Max member distance from the centroid of partition ``z``."""
        return float(self._radii[z])

    def neighbors(self, z: int) -> tuple[int, ...]:
        """Partitions adjacent to ``z`` (sharing at least one edge), sorted."""
        return self._adjacency[z]

    def adjacent(self, a: int, b: int) -> bool:
        """Whether partitions ``a`` and ``b`` are adjacent."""
        return b in self._adjacency[a]

    def landmark_cost(self, a: int, b: int) -> float:
        """Travel cost (seconds) between the landmarks of ``a`` and ``b``."""
        return float(self._landmark_cost[a, b])

    def landmark_cost_matrix(self) -> np.ndarray:
        """Copy of the full landmark cost matrix in seconds."""
        return self._landmark_cost.copy()

    def partitions_intersecting_disc(self, x: float, y: float, radius_m: float) -> list[int]:
        """Partitions whose bounding disc intersects the query disc.

        Used for candidate taxi searching: the searching area centred at
        a request origin with radius ``gamma`` is matched against each
        partition's (centroid, radius) bounding disc.

        Centroid distances are computed once per query centre (with
        ``np.hypot``, so cached and uncached answers are bit-identical)
        and replayed from a per-coordinate cache; the threshold test
        itself is the same IEEE add/compare the array kernel performs.
        """
        key = (x, y)
        d = self._disc_cache.get(key)
        if d is None:
            d = np.hypot(self._centroids[:, 0] - x, self._centroids[:, 1] - y).tolist()
            if len(self._disc_cache) >= 131072:
                self._disc_cache.clear()
            self._disc_cache[key] = d
        radii = self._radii_list
        return [z for z in range(len(d)) if d[z] <= radii[z] + radius_m]

    def memory_bytes(self) -> int:
        """Approximate footprint of the landmark structures."""
        total = self._landmark_cost.nbytes + self._centroids.nbytes
        total += self._radii.nbytes + self._partition_of.nbytes
        total += sum(64 + 8 * len(p) for p in self._partitions)
        total += sum(64 + 8 * len(a) for a in self._adjacency)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LandmarkGraph(num_partitions={self.num_partitions})"
