"""Road-network substrate: graphs, geometry, generators, routing engines."""

from .geo import (
    CHENGDU_LAT,
    CHENGDU_LNG,
    Point,
    bearing_deg,
    centroid,
    cosine_similarity,
    euclidean,
    haversine_m,
    latlng_to_xy,
    xy_to_latlng,
)
from .generators import grid_city, ring_radial_city, small_test_network
from .graph import DEFAULT_SPEED_MPS, RoadNetwork, RoadNetworkError
from .landmarks import LandmarkGraph
from .shortest_path import (
    PathNotFound,
    ShortestPathEngine,
    clear_subgraph_cache,
    dijkstra_restricted,
    subgraph_cache_stats,
)
from .traffic import TrafficModel, chengdu_weekend, chengdu_workday, free_flow

__all__ = [
    "CHENGDU_LAT",
    "CHENGDU_LNG",
    "DEFAULT_SPEED_MPS",
    "LandmarkGraph",
    "PathNotFound",
    "Point",
    "RoadNetwork",
    "RoadNetworkError",
    "ShortestPathEngine",
    "bearing_deg",
    "centroid",
    "cosine_similarity",
    "clear_subgraph_cache",
    "dijkstra_restricted",
    "subgraph_cache_stats",
    "euclidean",
    "grid_city",
    "haversine_m",
    "latlng_to_xy",
    "ring_radial_city",
    "small_test_network",
    "xy_to_latlng",
    "TrafficModel",
    "chengdu_weekend",
    "chengdu_workday",
    "free_flow",
]
