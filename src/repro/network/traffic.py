"""Traffic conditions: time-of-day congestion profiles.

The paper assumes stable traffic, with a stated extension path: "our
system could easily extend to run with real-time traffic conditions if
such information can be timely derived" (Section III-A).  This module
provides that extension at the granularity the evaluation needs: a
per-hour congestion profile that rescales the constant travel speed for
the window being simulated.  Within a window, travel costs stay
constant — exactly the paper's assumption — but different windows (the
8 a.m. crawl versus the 10 a.m. weekend flow) see different speeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import RoadNetwork


@dataclass(frozen=True)
class TrafficModel:
    """Hourly speed factors relative to free flow.

    ``factors[h]`` multiplies the network's base speed during hour
    ``h`` of the day; 1.0 is free flow, 0.6 is heavy congestion.
    """

    factors: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.factors) != 24:
            raise ValueError("a traffic profile needs one factor per hour")
        if any(f <= 0 for f in self.factors):
            raise ValueError("speed factors must be positive")

    def factor_at_hour(self, hour: int) -> float:
        """Speed factor during hour-of-day ``hour``."""
        return self.factors[hour % 24]

    def factor_at_time(self, t_seconds: float) -> float:
        """Speed factor at an absolute simulation time."""
        return self.factor_at_hour(int(t_seconds // 3600) % 24)

    def speed_at_hour(self, base_speed_mps: float, hour: int) -> float:
        """Effective speed during ``hour`` for a given free-flow speed."""
        return base_speed_mps * self.factor_at_hour(hour)

    def apply(self, network: RoadNetwork, hour: int) -> RoadNetwork:
        """A copy of ``network`` travelling at the hour's effective speed.

        Geometry and edge lengths are shared conceptually (re-built from
        the same arrays); only the speed changes, so all travel costs
        scale by ``1 / factor``.
        """
        return RoadNetwork(
            np.asarray(network.xy).copy(),
            list(network.edges()),
            speed_mps=self.speed_at_hour(network.speed_mps, hour),
        )


def free_flow() -> TrafficModel:
    """No congestion at any hour."""
    return TrafficModel(factors=tuple([1.0] * 24))


def chengdu_workday() -> TrafficModel:
    """A workday congestion profile shaped after Chengdu's commute.

    Morning (7-9) and evening (17-19) peaks slow traffic to ~65-70% of
    free flow; nights run free.
    """
    factors = [1.0] * 24
    for h, f in ((7, 0.75), (8, 0.65), (9, 0.75), (17, 0.70), (18, 0.65), (19, 0.75)):
        factors[h] = f
    for h in (10, 11, 12, 13, 14, 15, 16):
        factors[h] = 0.85
    return TrafficModel(factors=tuple(factors))


def chengdu_weekend() -> TrafficModel:
    """A weekend profile: mild midday slow-down, no commute peaks."""
    factors = [1.0] * 24
    for h in range(10, 21):
        factors[h] = 0.85
    return TrafficModel(factors=tuple(factors))
