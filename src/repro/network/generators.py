"""Synthetic city road-network generators.

The paper evaluates on the OpenStreetMap network of Chengdu (214k
vertices, 466k edges) which we cannot download in this offline
environment.  These generators produce directed, strongly connected
planar networks with the structural features the ridesharing algorithms
care about: a dense grid core, arterial shortcuts, and mild geometric
irregularity.  Sizes are configurable so tests run on tiny graphs while
benchmarks use city-scale-in-miniature ones.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csgraph

from .graph import DEFAULT_SPEED_MPS, RoadNetwork


def _largest_scc(num_vertices: int, edges: list[tuple[int, int, float]]) -> tuple[np.ndarray, list[tuple[int, int, float]]]:
    """Restrict to the largest strongly connected component.

    Returns the kept vertex ids (sorted) and the re-indexed edge list.
    """
    from scipy import sparse

    if not edges:
        return np.array([0]), []
    rows = np.array([e[0] for e in edges])
    cols = np.array([e[1] for e in edges])
    data = np.ones(len(edges))
    mat = sparse.csr_matrix((data, (rows, cols)), shape=(num_vertices, num_vertices))
    n_comp, labels = csgraph.connected_components(mat, directed=True, connection="strong")
    if n_comp == 1:
        return np.arange(num_vertices), edges
    sizes = np.bincount(labels, minlength=n_comp)
    keep_label = int(np.argmax(sizes))
    keep = np.flatnonzero(labels == keep_label)
    remap = -np.ones(num_vertices, dtype=np.int64)
    remap[keep] = np.arange(keep.size)
    kept_edges = [
        (int(remap[u]), int(remap[v]), length)
        for u, v, length in edges
        if remap[u] >= 0 and remap[v] >= 0
    ]
    return keep, kept_edges


def grid_city(
    rows: int = 40,
    cols: int = 40,
    spacing_m: float = 220.0,
    jitter: float = 0.25,
    removal_rate: float = 0.08,
    one_way_rate: float = 0.10,
    arterial_every: int = 8,
    speed_mps: float = DEFAULT_SPEED_MPS,
    seed: int | None = 7,
) -> RoadNetwork:
    """Perturbed Manhattan grid with arterial roads.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the network has at most ``rows * cols`` vertices.
    spacing_m:
        Nominal block size.  A 40x40 grid at 220 m covers ~8.8 km x 8.8 km,
        roughly the extent of Chengdu's 2nd-ring area at 1/5 scale.
    jitter:
        Positional noise as a fraction of ``spacing_m``.
    removal_rate:
        Fraction of street segments removed to break the perfect grid.
    one_way_rate:
        Fraction of remaining segments that keep only one direction.
    arterial_every:
        Every ``arterial_every``-th row/column becomes an arterial whose
        segments are never removed, mimicking main roads.
    seed:
        RNG seed; ``None`` gives nondeterministic output.

    The result is the largest strongly connected component of the
    construction, with vertices re-indexed contiguously.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid_city needs at least a 2x2 grid")
    rng = np.random.default_rng(seed)

    ids = np.arange(rows * cols).reshape(rows, cols)
    xs = np.tile(np.arange(cols) * spacing_m, (rows, 1))
    ys = np.tile((np.arange(rows) * spacing_m)[:, None], (1, cols))
    xs = xs + rng.normal(0.0, jitter * spacing_m, size=xs.shape)
    ys = ys + rng.normal(0.0, jitter * spacing_m, size=ys.shape)
    xy = np.stack([xs.ravel(), ys.ravel()], axis=1)

    def is_arterial(r: int, c: int, horizontal: bool) -> bool:
        if arterial_every <= 0:
            return False
        return (r % arterial_every == 0) if horizontal else (c % arterial_every == 0)

    edges: list[tuple[int, int, float]] = []
    for r in range(rows):
        for c in range(cols):
            u = int(ids[r, c])
            for dr, dc, horizontal in ((0, 1, True), (1, 0, False)):
                rr, cc = r + dr, c + dc
                if rr >= rows or cc >= cols:
                    continue
                v = int(ids[rr, cc])
                arterial = is_arterial(r, c, horizontal)
                if not arterial and rng.random() < removal_rate:
                    continue
                length = float(np.hypot(*(xy[u] - xy[v])))
                if not arterial and rng.random() < one_way_rate:
                    if rng.random() < 0.5:
                        edges.append((u, v, length))
                    else:
                        edges.append((v, u, length))
                else:
                    edges.append((u, v, length))
                    edges.append((v, u, length))

    keep, kept_edges = _largest_scc(rows * cols, edges)
    return RoadNetwork(xy[keep], kept_edges, speed_mps=speed_mps)


def ring_radial_city(
    num_rings: int = 6,
    num_radials: int = 16,
    ring_spacing_m: float = 700.0,
    speed_mps: float = DEFAULT_SPEED_MPS,
    seed: int | None = 11,
) -> RoadNetwork:
    """Ring-and-radial city (European style) used as an alternative topology.

    Vertices lie on ``num_rings`` concentric rings crossed by
    ``num_radials`` radial roads, plus a centre vertex.  All segments are
    bidirectional, so the network is strongly connected by construction.
    """
    if num_rings < 1 or num_radials < 3:
        raise ValueError("need at least 1 ring and 3 radials")
    rng = np.random.default_rng(seed)

    points: list[tuple[float, float]] = [(0.0, 0.0)]
    index: dict[tuple[int, int], int] = {}
    for ring in range(1, num_rings + 1):
        radius = ring * ring_spacing_m
        for k in range(num_radials):
            angle = 2.0 * np.pi * k / num_radials + rng.normal(0.0, 0.02)
            index[(ring, k)] = len(points)
            points.append((radius * np.cos(angle), radius * np.sin(angle)))
    xy = np.asarray(points)

    edges: list[tuple[int, int]] = []

    def link(u: int, v: int) -> None:
        edges.append((u, v))
        edges.append((v, u))

    for ring in range(1, num_rings + 1):
        for k in range(num_radials):
            link(index[(ring, k)], index[(ring, (k + 1) % num_radials)])
    for k in range(num_radials):
        link(0, index[(1, k)])
        for ring in range(1, num_rings):
            link(index[(ring, k)], index[(ring + 1, k)])

    return RoadNetwork(xy, edges, speed_mps=speed_mps)


def small_test_network(speed_mps: float = DEFAULT_SPEED_MPS) -> RoadNetwork:
    """Tiny deterministic 3x3 bidirectional grid used across the test suite.

    Vertex layout (ids), spacing 100 m::

        6 7 8
        3 4 5
        0 1 2
    """
    xy = [(100.0 * (i % 3), 100.0 * (i // 3)) for i in range(9)]
    edges: list[tuple[int, int]] = []
    for r in range(3):
        for c in range(3):
            u = 3 * r + c
            if c < 2:
                edges += [(u, u + 1), (u + 1, u)]
            if r < 2:
                edges += [(u, u + 3), (u + 3, u)]
    return RoadNetwork(xy, edges, speed_mps=speed_mps)
