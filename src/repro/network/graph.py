"""Directed road-network graph (Definition 1 of the paper).

A :class:`RoadNetwork` is a directed graph ``G(V, E)`` whose vertices are
geolocations (road intersections) and whose edges are road segments with
a travel cost.  The paper treats travel time and travel distance as
interchangeable under a constant taxi speed; we store edge *lengths* in
metres and expose costs in *seconds* for a configurable speed, which is
what deadlines and schedules are expressed in.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

import numpy as np
from scipy import sparse

from .geo import Point

#: Constant taxi travel speed assumed throughout the paper's evaluation
#: (Section V-A4): 15 km/h, expressed in metres per second.
DEFAULT_SPEED_MPS = 15_000.0 / 3600.0


class RoadNetworkError(ValueError):
    """Raised when a road network is constructed or queried incorrectly."""


class RoadNetwork:
    """Immutable directed road network with planar vertex coordinates.

    Parameters
    ----------
    xy:
        ``(n, 2)`` array of vertex coordinates in metres.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, length_m)`` tuples.  When the
        length is omitted it defaults to the Euclidean distance between
        the endpoints.
    speed_mps:
        Constant travel speed used to convert lengths to travel times.

    The vertex set is ``range(n)``.  Parallel edges are collapsed to the
    cheapest one; self loops are rejected.
    """

    def __init__(
        self,
        xy: np.ndarray | Sequence[tuple[float, float]],
        edges: Iterable[tuple],
        speed_mps: float = DEFAULT_SPEED_MPS,
    ) -> None:
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise RoadNetworkError("xy must be an (n, 2) array of coordinates")
        if xy.shape[0] == 0:
            raise RoadNetworkError("a road network needs at least one vertex")
        if speed_mps <= 0:
            raise RoadNetworkError("speed must be positive")
        self._xy = xy
        self._speed = float(speed_mps)
        n = xy.shape[0]

        length_of: dict[tuple[int, int], float] = {}
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                length = None
            elif len(edge) == 3:
                u, v, length = edge
                length = float(length)
            else:
                raise RoadNetworkError(f"edge {edge!r} must be (u, v) or (u, v, length)")
            u = int(u)
            v = int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise RoadNetworkError(f"edge ({u}, {v}) references an unknown vertex")
            if length is None:
                length = float(np.hypot(*(xy[u] - xy[v])))
            if u == v:
                raise RoadNetworkError(f"self loop on vertex {u} is not allowed")
            if length < 0:
                raise RoadNetworkError(f"edge ({u}, {v}) has negative length {length}")
            key = (u, v)
            if key not in length_of or length < length_of[key]:
                length_of[key] = length

        self._adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._radj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for (u, v), length in sorted(length_of.items()):
            self._adj[u].append((v, length))
            self._radj[v].append((u, length))
        self._num_edges = len(length_of)
        self._length_of = length_of
        self._csr: sparse.csr_matrix | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``N = |V|``."""
        return self._xy.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E|``."""
        return self._num_edges

    @property
    def speed_mps(self) -> float:
        """Constant travel speed in metres per second."""
        return self._speed

    @property
    def xy(self) -> np.ndarray:
        """Read-only view of the ``(n, 2)`` vertex coordinate array."""
        view = self._xy.view()
        view.flags.writeable = False
        return view

    def vertices(self) -> range:
        """All vertex ids."""
        return range(self.num_vertices)

    def point(self, v: int) -> Point:
        """Coordinates of vertex ``v`` as a :class:`Point`."""
        x, y = self._xy[v]
        return Point(float(x), float(y))

    def neighbors(self, v: int) -> list[tuple[int, float]]:
        """Outgoing ``(neighbor, length_m)`` pairs of vertex ``v``."""
        return list(self._adj[v])

    def in_neighbors(self, v: int) -> list[tuple[int, float]]:
        """Incoming ``(neighbor, length_m)`` pairs of vertex ``v``."""
        return list(self._radj[v])

    def out_degree(self, v: int) -> int:
        """Number of outgoing edges of ``v``."""
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``(u, v)`` exists."""
        return (u, v) in self._length_of

    def edge_length(self, u: int, v: int) -> float:
        """Length in metres of edge ``(u, v)``; raises if absent."""
        try:
            return self._length_of[(u, v)]
        except KeyError:
            raise RoadNetworkError(f"no edge ({u}, {v})") from None

    def edge_cost(self, u: int, v: int) -> float:
        """Travel cost (seconds) of edge ``(u, v)`` at the network speed."""
        return self.edge_length(u, v) / self._speed

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate all edges as ``(u, v, length_m)``."""
        for (u, v), length in self._length_of.items():
            yield u, v, length

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def seconds_to_meters(self, seconds: float) -> float:
        """Distance covered in ``seconds`` at the network speed."""
        return seconds * self._speed

    def meters_to_seconds(self, meters: float) -> float:
        """Travel time for ``meters`` at the network speed."""
        return meters / self._speed

    def straight_line_m(self, u: int, v: int) -> float:
        """Euclidean distance between vertices ``u`` and ``v`` in metres."""
        du = self._xy[u] - self._xy[v]
        return float(math.hypot(du[0], du[1]))

    def path_length_m(self, path: Sequence[int]) -> float:
        """Total length in metres of a vertex path; validates every hop."""
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += self.edge_length(u, v)
        return total

    def path_cost_s(self, path: Sequence[int]) -> float:
        """Total travel time in seconds of a vertex path."""
        return self.path_length_m(path) / self._speed

    def is_path(self, path: Sequence[int]) -> bool:
        """Whether consecutive vertices in ``path`` are joined by edges."""
        return all(self.has_edge(u, v) for u, v in zip(path, path[1:]))

    # ------------------------------------------------------------------
    # scipy interop
    # ------------------------------------------------------------------
    def to_csr(self) -> sparse.csr_matrix:
        """Sparse adjacency matrix with edge lengths, cached."""
        if self._csr is None:
            n = self.num_vertices
            if self._num_edges == 0:
                self._csr = sparse.csr_matrix((n, n))
            else:
                rows = np.empty(self._num_edges, dtype=np.int64)
                cols = np.empty(self._num_edges, dtype=np.int64)
                data = np.empty(self._num_edges, dtype=np.float64)
                for i, ((u, v), length) in enumerate(self._length_of.items()):
                    rows[i] = u
                    cols[i] = v
                    # csgraph treats an explicit 0 as "no edge"; nudge
                    # zero-length edges to a tiny positive weight instead.
                    data[i] = length if length > 0 else 1e-9
                self._csr = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
        return self._csr

    def nearest_vertex(self, x: float, y: float) -> int:
        """Vertex closest to the planar point ``(x, y)``."""
        d2 = (self._xy[:, 0] - x) ** 2 + (self._xy[:, 1] - y) ** 2
        return int(np.argmin(d2))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoadNetwork(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, speed_mps={self._speed:.3f})"
        )
