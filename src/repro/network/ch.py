"""Contraction hierarchies: the scalable routing backend (``mode="ch"``).

The dense all-pairs matrix of :class:`~repro.network.shortest_path.
ShortestPathEngine` is O(V²) memory — ~340 GB at the paper's 214k-vertex
Chengdu scale — and the lazy per-source fallback pays a full O(E log V)
Dijkstra per cold source.  This module implements the standard remedy
(Geisberger et al.; applied to taxi sharing by Laupichler & Sanders, see
PAPERS.md): contract vertices bottom-up in edge-difference order,
inserting shortcuts that preserve shortest distances, then answer
point-to-point queries with a *bidirectional upward* search whose
search space is tiny and independent of |V| in practice.  Many-to-many
queries reuse one backward search per target through meeting-vertex
buckets, so a ``cost_matrix`` over k sources and targets costs
O(k) searches instead of O(k) full Dijkstras.

Bit-identical distances
-----------------------
The engine contract says every backend returns distances bit-identical
to the scalar/scipy Dijkstra reference.  Raw CH sums (nested shortcut
weights) agree with the reference only up to floating-point rounding,
so this module never returns them: a query finds the shortest path
(raw sums are used only to *select* it), unpacks the shortcuts to the
original edge sequence, and re-accumulates the weights left-to-right
from the source — exactly the order :func:`scipy.sparse.csgraph.
dijkstra` uses along its shortest-path tree.  When the shortest path is
unique (always, for the jittered synthetic networks and real road
lengths) the rectified value equals the reference bit for bit.

Per-source rectified prefixes are memoised (an LRU of partial scipy
rows, in effect), so a dispatcher's skewed, repetitive query mix hits
an O(1) dict lookup most of the time and only pays a search + unpack
on the first visit of a (source, target) pair.

The hierarchy itself is nine flat numpy arrays (:meth:`Contraction
Hierarchy.to_arrays`) persisted as a content-addressed artifact kind
(``"ch"``) so warm runs mmap it and skip preprocessing entirely.
"""

from __future__ import annotations

import heapq
import math
import time
from collections import OrderedDict
from collections.abc import Mapping, Sequence

import numpy as np

from .graph import RoadNetwork

#: Bump when the serialised array layout changes (part of the artifact key).
CH_FORMAT_VERSION = 1

#: Settled-vertex cap per witness search during contraction.  A lower cap
#: only ever inserts *more* shortcuts (witness not found in time), never
#: wrong ones, so correctness does not depend on it.
WITNESS_SETTLE_CAP = 60

#: Upward/downward search results kept per direction (LRU).
SEARCH_CACHE_SIZE = 1024

#: Per-source rectified-prefix memos kept (LRU).
RECT_CACHE_SIZE = 1024

#: Whole many-to-many result matrices kept, keyed by the exact query
#: (LRU).  Dispatch working sets repeat batched queries — insertion
#: kernels re-evaluate the same taxi/stop sets across drain ticks and
#: the landmark builder sweeps a fixed landmark set — so a warm repeat
#: must cost a dict probe, not a bucket sweep.
MAT_CACHE_SIZE = 256

#: Shortcut expansions memoised before the cache is dropped wholesale.
EXPANSION_CACHE_SIZE = 262_144

_INF = float("inf")

#: ``(dist, pred)`` of one upward/downward search: final distances by
#: vertex in settle order, and ``pred[v] = (other_endpoint, edge_index)``.
SearchResult = tuple[dict[int, float], dict[int, tuple[int, int]]]

_ARRAY_NAMES = (
    "rank",
    "up_indptr",
    "up_head",
    "up_w",
    "up_mid",
    "down_indptr",
    "down_tail",
    "down_w",
    "down_mid",
)


class ContractionHierarchy:
    """A built contraction hierarchy over one :class:`RoadNetwork`.

    Edges of the hierarchy are split by rank into an *upward* CSR
    (``tail`` rank < ``head`` rank, indexed by tail) and a *downward*
    CSR (original direction ``tail -> row vertex`` with the row vertex
    ranked lower, indexed by the row vertex so the backward search can
    climb).  ``*_mid`` holds the contracted middle vertex of a shortcut
    or ``-1`` for an original edge.

    Use :meth:`build` (cold) or :meth:`from_arrays` (artifact-store
    warm path); the constructor itself only attaches prebuilt arrays.
    """

    def __init__(self, network: RoadNetwork, arrays: Mapping[str, np.ndarray]) -> None:
        n = network.num_vertices
        missing = [name for name in _ARRAY_NAMES if name not in arrays]
        if missing:
            raise ValueError(f"hierarchy arrays missing {missing}")
        if arrays["rank"].shape != (n,):
            raise ValueError(
                f"hierarchy rank has shape {arrays['rank'].shape}, expected ({n},)"
            )
        self._network = network
        self._arrays: dict[str, np.ndarray] = {
            name: arrays[name] for name in _ARRAY_NAMES
        }
        # Plain Python lists for the query hot loops: unboxed element
        # access is several times faster than per-element numpy indexing,
        # and the O(E) conversion is milliseconds even at 200k vertices.
        # The numpy arrays (possibly memmapped) stay the storage format.
        up_indptr = self._arrays["up_indptr"]
        down_indptr = self._arrays["down_indptr"]
        self._up_indptr: list[int] = up_indptr.tolist()
        self._up_head: list[int] = self._arrays["up_head"].tolist()
        self._up_w: list[float] = self._arrays["up_w"].tolist()
        self._up_mid: list[int] = self._arrays["up_mid"].tolist()
        self._up_tail: list[int] = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(up_indptr)
        ).tolist()
        self._down_indptr: list[int] = down_indptr.tolist()
        self._down_tail: list[int] = self._arrays["down_tail"].tolist()
        self._down_w: list[float] = self._arrays["down_w"].tolist()
        self._down_mid: list[int] = self._arrays["down_mid"].tolist()
        self._down_owner: list[int] = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(down_indptr)
        ).tolist()
        self.num_vertices = n
        self.num_shortcuts = int(
            np.count_nonzero(self._arrays["up_mid"] >= 0)
            + np.count_nonzero(self._arrays["down_mid"] >= 0)
        )
        self.num_edges = len(self._up_head) + len(self._down_tail)
        #: Wall-clock seconds spent contracting (0.0 on the warm path).
        self.build_seconds = 0.0
        # Query-side caches.
        self._fwd_cache: OrderedDict[int, SearchResult] = OrderedDict()
        self._bwd_cache: OrderedDict[int, SearchResult] = OrderedDict()
        self._rect: OrderedDict[int, dict[int, float]] = OrderedDict()
        self._mat: OrderedDict[
            tuple[tuple[int, ...], tuple[int, ...]], np.ndarray
        ] = OrderedDict()
        self._expansions: dict[tuple[int, int], tuple[tuple[int, float], ...]] = {}
        # Plain-int tallies harvested in bulk by ``stats_snapshot``.
        self._stats: dict[str, int] = {
            "queries": 0,
            "fwd_searches": 0,
            "bwd_searches": 0,
            "settled": 0,
            "bucket_entries": 0,
            "memo_hits": 0,
            "mat_hits": 0,
            "rect_steps": 0,
        }

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, network: RoadNetwork) -> "ContractionHierarchy":
        """Contract ``network`` bottom-up by lazy edge difference.

        Deterministic: the priority queue breaks ties by vertex id, the
        remaining-graph adjacency is insertion-ordered dicts seeded from
        the CSR, and the final per-vertex edge lists are sorted — so two
        builds of the same network produce identical arrays (the basis
        of the content-addressed artifact round-trip).
        """
        t0 = time.perf_counter()  # repro-lint: disable=REP003 reason=build_seconds metric only, never a decision input
        n = network.num_vertices
        csr = network.to_csr()
        indptr = csr.indptr
        cols = csr.indices
        data = csr.data
        # Remaining-graph adjacency: out_[u][v] = in_[v][u] = (weight, mid).
        # Uses the same zero-length nudge as ``to_csr`` (it *is* the CSR
        # data), so rectified sums match the scipy reference exactly.
        out_: list[dict[int, tuple[float, int]]] = [{} for _ in range(n)]
        in_: list[dict[int, tuple[float, int]]] = [{} for _ in range(n)]
        for u in range(n):
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            for v, w in zip(cols[lo:hi].tolist(), data[lo:hi].tolist()):
                if v == u:
                    continue
                cur = out_[u].get(v)
                if cur is None or w < cur[0]:
                    out_[u][v] = (w, -1)
                    in_[v][u] = (w, -1)

        rank = np.full(n, -1, dtype=np.int64)
        deleted = [0] * n
        # Neighborhood version: bumped whenever an edge incident to the
        # vertex is added or removed, so shortcut sets (the expensive
        # witness searches) are recomputed only when actually stale.
        version = [0] * n
        shortcut_cache: list[tuple[int, list[tuple[int, int, float]]] | None]
        shortcut_cache = [None] * n
        up_rows: list[list[tuple[int, float, int]]] = [[] for _ in range(n)]
        down_rows: list[list[tuple[int, float, int]]] = [[] for _ in range(n)]

        def witness_dists(
            src: int, excluded: int, limit: float, targets: dict[int, int]
        ) -> dict[int, float]:
            """Bounded Dijkstra from ``src`` avoiding ``excluded``.

            Every tentative distance is the length of a real path, i.e. an
            upper bound on the true distance, which is all a witness test
            needs.  Stops as soon as all ``targets`` are settled (the
            common case, long before the settle cap).
            """
            dist: dict[int, float] = {src: 0.0}
            settled: dict[int, float] = {}
            heap: list[tuple[float, int]] = [(0.0, src)]
            remaining = len(targets) - (1 if src in targets else 0)
            while heap and len(settled) < WITNESS_SETTLE_CAP and remaining > 0:
                d, x = heapq.heappop(heap)
                if x in settled:
                    continue
                if d > limit:
                    break
                settled[x] = d
                if x in targets:
                    remaining -= 1
                for y, (w, _mid) in out_[x].items():
                    if y == excluded or y in settled:
                        continue
                    nd = d + w
                    if nd < dist.get(y, _INF):
                        dist[y] = nd
                        heapq.heappush(heap, (nd, y))
            return dist

        def shortcuts_for(v: int) -> list[tuple[int, int, float]]:
            """Shortcuts (u, w, weight) required if ``v`` were contracted."""
            ins = list(in_[v].items())
            outs = list(out_[v].items())
            needed: list[tuple[int, int, float]] = []
            if not ins or not outs:
                return needed
            max_out = max(w for _t, (w, _m) in outs)
            targets = {t: 0 for t, _wm in outs}
            for u, (w_uv, _mu) in ins:
                dist = witness_dists(u, v, w_uv + max_out, targets)
                for t, (w_vt, _mt) in outs:
                    if t == u:
                        continue
                    via = w_uv + w_vt
                    if dist.get(t, _INF) <= via:
                        continue  # a witness path avoids v
                    needed.append((u, t, via))
            return needed

        def shortcuts_cached(v: int) -> list[tuple[int, int, float]]:
            cached = shortcut_cache[v]
            if cached is not None and cached[0] == version[v]:
                return cached[1]
            needed = shortcuts_for(v)
            shortcut_cache[v] = (version[v], needed)
            return needed

        def priority_of(v: int, num_shortcuts: int) -> int:
            return num_shortcuts - len(in_[v]) - len(out_[v]) + deleted[v]

        heap: list[tuple[int, int]] = []
        for v in range(n):
            heap.append((priority_of(v, len(shortcuts_cached(v))), v))
        heapq.heapify(heap)

        next_rank = 0
        while heap:
            _p, v = heapq.heappop(heap)
            if rank[v] >= 0:
                continue
            needed = shortcuts_cached(v)
            prio = priority_of(v, len(needed))
            # Lazy update: if v no longer has the smallest priority,
            # requeue it with the fresh value and contract the new top.
            if heap and (prio, v) > heap[0]:
                heapq.heappush(heap, (prio, v))
                continue
            rank[v] = next_rank
            next_rank += 1
            for u, (w, mid) in in_[v].items():
                down_rows[v].append((u, w, mid))
                del out_[u][v]
                deleted[u] += 1
                version[u] += 1
            for t, (w, mid) in out_[v].items():
                up_rows[v].append((t, w, mid))
                del in_[t][v]
                deleted[t] += 1
                version[t] += 1
            in_[v].clear()
            out_[v].clear()
            for u, t, weight in needed:
                cur = out_[u].get(t)
                if cur is None or weight < cur[0]:
                    out_[u][t] = (weight, v)
                    in_[t][u] = (weight, v)
                    version[u] += 1
                    version[t] += 1

        arrays = cls._rows_to_arrays(rank, up_rows, down_rows)
        ch = cls(network, arrays)
        ch.build_seconds = time.perf_counter() - t0  # repro-lint: disable=REP003 reason=build_seconds metric only, never a decision input
        return ch

    @staticmethod
    def _rows_to_arrays(
        rank: np.ndarray,
        up_rows: Sequence[list[tuple[int, float, int]]],
        down_rows: Sequence[list[tuple[int, float, int]]],
    ) -> dict[str, np.ndarray]:
        n = rank.shape[0]

        def pack(
            rows: Sequence[list[tuple[int, float, int]]],
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
            indptr = np.zeros(n + 1, dtype=np.int64)
            total = 0
            for v in range(n):
                total += len(rows[v])
                indptr[v + 1] = total
            other = np.empty(total, dtype=np.int64)
            weight = np.empty(total, dtype=np.float64)
            mid = np.empty(total, dtype=np.int64)
            k = 0
            for v in range(n):
                for o, w, m in sorted(rows[v]):
                    other[k] = o
                    weight[k] = w
                    mid[k] = m
                    k += 1
            return indptr, other, weight, mid

        up_indptr, up_head, up_w, up_mid = pack(up_rows)
        down_indptr, down_tail, down_w, down_mid = pack(down_rows)
        return {
            "rank": rank,
            "up_indptr": up_indptr,
            "up_head": up_head,
            "up_w": up_w,
            "up_mid": up_mid,
            "down_indptr": down_indptr,
            "down_tail": down_tail,
            "down_w": down_w,
            "down_mid": down_mid,
        }

    @classmethod
    def from_arrays(
        cls, network: RoadNetwork, arrays: Mapping[str, np.ndarray]
    ) -> "ContractionHierarchy":
        """Attach a persisted hierarchy (typically mmapped .npy views)."""
        return cls(network, arrays)

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The hierarchy as named flat arrays (the serialisation format)."""
        return dict(self._arrays)

    # ------------------------------------------------------------------
    # searches
    # ------------------------------------------------------------------
    def _search(
        self,
        s: int,
        indptr: list[int],
        other: list[int],
        weight: list[float],
    ) -> SearchResult:
        dist: dict[int, float] = {}
        pred: dict[int, tuple[int, int]] = {}
        best: dict[int, float] = {s: 0.0}
        heap: list[tuple[float, int]] = [(0.0, s)]
        while heap:
            d, x = heapq.heappop(heap)
            if x in dist:
                continue
            dist[x] = d
            for k in range(indptr[x], indptr[x + 1]):
                y = other[k]
                if y in dist:
                    continue
                nd = d + weight[k]
                cur = best.get(y)
                if cur is None or nd < cur:
                    best[y] = nd
                    pred[y] = (x, k)
                    heapq.heappush(heap, (nd, y))
        self._stats["settled"] += len(dist)
        return dist, pred

    def _fwd(self, s: int) -> SearchResult:
        cached = self._fwd_cache.get(s)
        if cached is not None:
            self._fwd_cache.move_to_end(s)
            return cached
        self._stats["fwd_searches"] += 1
        res = self._search(s, self._up_indptr, self._up_head, self._up_w)
        self._fwd_cache[s] = res
        if len(self._fwd_cache) > SEARCH_CACHE_SIZE:
            self._fwd_cache.popitem(last=False)
        return res

    def _bwd(self, t: int) -> SearchResult:
        cached = self._bwd_cache.get(t)
        if cached is not None:
            self._bwd_cache.move_to_end(t)
            return cached
        self._stats["bwd_searches"] += 1
        res = self._search(t, self._down_indptr, self._down_tail, self._down_w)
        self._bwd_cache[t] = res
        if len(self._bwd_cache) > SEARCH_CACHE_SIZE:
            self._bwd_cache.popitem(last=False)
        return res

    # ------------------------------------------------------------------
    # shortcut unpacking
    # ------------------------------------------------------------------
    def _edge_up(self, row: int, head: int) -> int:
        for k in range(self._up_indptr[row], self._up_indptr[row + 1]):
            if self._up_head[k] == head:
                return k
        raise RuntimeError(f"corrupt hierarchy: no up edge {row} -> {head}")

    def _edge_down(self, row: int, tail: int) -> int:
        for k in range(self._down_indptr[row], self._down_indptr[row + 1]):
            if self._down_tail[k] == tail:
                return k
        raise RuntimeError(f"corrupt hierarchy: no down edge {tail} -> {row}")

    def _expand(self, kind: int, edge: int) -> tuple[tuple[int, float], ...]:
        """Original-edge steps ``(vertex, weight)`` of hierarchy edge ``edge``.

        ``kind`` 0 = upward edge, 1 = downward edge; steps run tail to
        head and exclude the tail vertex.  Iterative (explicit stack) so
        deeply nested shortcuts cannot hit the recursion limit; memoised
        per edge because dispatch queries unpack the same corridor edges
        over and over.
        """
        memo = self._expansions
        key = (kind, edge)
        got = memo.get(key)
        if got is not None:
            return got
        stack = [key]
        while stack:
            kk = stack[-1]
            if kk in memo:
                stack.pop()
                continue
            kd, ke = kk
            if kd == 0:
                mid = self._up_mid[ke]
                tail = self._up_tail[ke]
                head = self._up_head[ke]
                w = self._up_w[ke]
            else:
                mid = self._down_mid[ke]
                tail = self._down_tail[ke]
                head = self._down_owner[ke]
                w = self._down_w[ke]
            if mid < 0:
                memo[kk] = ((head, w),)
                stack.pop()
                continue
            # Shortcut tail->head via mid: components tail->mid and
            # mid->head were recorded as mid's down/up edges when mid
            # was contracted (mid ranks below both endpoints).
            first = (1, self._edge_down(mid, tail))
            second = (0, self._edge_up(mid, head))
            e1 = memo.get(first)
            e2 = memo.get(second)
            if e1 is not None and e2 is not None:
                memo[kk] = e1 + e2
                stack.pop()
            else:
                if e2 is None:
                    stack.append(second)
                if e1 is None:
                    stack.append(first)
        result = memo[key]
        if len(memo) > EXPANSION_CACHE_SIZE:
            memo.clear()
            memo[key] = result
        return result

    # ------------------------------------------------------------------
    # rectification
    # ------------------------------------------------------------------
    def _memo_for(self, s: int) -> dict[int, float]:
        memo = self._rect.get(s)
        if memo is not None:
            self._rect.move_to_end(s)
            return memo
        memo = {s: 0.0}
        self._rect[s] = memo
        if len(self._rect) > RECT_CACHE_SIZE:
            self._rect.popitem(last=False)
        return memo

    def _pair_steps(
        self, s: int, t: int, meet: int, fwd: SearchResult, bwd: SearchResult
    ) -> list[tuple[int, float]]:
        """Original-edge steps of the found s->t path (via ``meet``)."""
        steps: list[tuple[int, float]] = []
        chain: list[int] = []
        x = meet
        fwd_pred = fwd[1]
        while x != s:
            px, k = fwd_pred[x]
            chain.append(k)
            x = px
        for k in reversed(chain):
            steps.extend(self._expand(0, k))
        x = meet
        bwd_pred = bwd[1]
        while x != t:
            nx, k = bwd_pred[x]
            steps.extend(self._expand(1, k))
            x = nx
        return steps

    def _rectify(
        self, s: int, t: int, meet: int, fwd: SearchResult, bwd: SearchResult
    ) -> float:
        """Left-to-right re-accumulated distance of the found path.

        Populates (and reuses) the per-source memo: once a prefix vertex
        is known, its canonical distance is adopted rather than resummed,
        which both saves work and keeps every query for the same
        (source, vertex) pair returning the identical float.
        """
        memo = self._memo_for(s)
        got = memo.get(t)
        if got is not None:
            return got
        steps = self._pair_steps(s, t, meet, fwd, bwd)
        self._stats["rect_steps"] += len(steps)
        d = 0.0
        for v, w in steps:
            known = memo.get(v)
            if known is None:
                d = d + w
                memo[v] = d
            else:
                d = known
        return d

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance_m(self, u: int, v: int) -> float:
        """Rectified shortest-path distance in metres (``inf`` if none)."""
        if u == v:
            return 0.0
        self._stats["queries"] += 1
        memo = self._rect.get(u)
        if memo is not None:
            got = memo.get(v)
            if got is not None:
                self._rect.move_to_end(u)
                self._stats["memo_hits"] += 1
                return got
        fwd = self._fwd(u)
        bwd = self._bwd(v)
        bd = bwd[0]
        best = _INF
        meet = -1
        for m, dm in fwd[0].items():
            dt = bd.get(m)
            if dt is not None:
                cand = dm + dt
                if cand < best:
                    best = cand
                    meet = m
        if meet < 0:
            return _INF
        return self._rectify(u, v, meet, fwd, bwd)

    def cost_matrix_m(
        self, us: Sequence[int], vs: Sequence[int]
    ) -> np.ndarray:
        """Rectified ``(len(us), len(vs))`` distance matrix in metres.

        One backward search per unique target feeds meeting-vertex
        buckets; each unique source then scans its single forward search
        against the buckets (the bucket-based many-to-many query).
        Warm repeats are tiered: an identical query returns the cached
        result matrix outright (treat it as read-only, like
        ``dist_row``); a near-identical one (same sources, reshuffled
        or subset targets) fills rows straight from the per-source
        rectification memos; only genuinely cold pairs pay searches.
        """
        us_i = [int(u) for u in us]
        vs_i = [int(v) for v in vs]
        mat_key = (tuple(us_i), tuple(vs_i))
        self._stats["queries"] += len(us_i) * len(vs_i)
        cached = self._mat.get(mat_key)
        if cached is not None:
            self._mat.move_to_end(mat_key)
            self._stats["mat_hits"] += 1
            return cached
        uniq_s = list(dict.fromkeys(us_i))
        uniq_t = list(dict.fromkeys(vs_i))
        # Per-source full-row fast path: every target already rectified
        # (the source memo holds ``{source: 0.0}``, so diagonal entries
        # come back 0.0 without a special case).
        rows: dict[int, list[float]] = {}
        values: dict[tuple[int, int], float] = {}
        missing: dict[int, list[int]] = {}
        for u in uniq_s:
            memo = self._rect.get(u)
            if memo is not None:
                get = memo.get
                row = [get(t) for t in vs_i]
                if None not in row:
                    rows[u] = row  # type: ignore[assignment]
                    self._rect.move_to_end(u)
                    self._stats["memo_hits"] += len(row)
                    continue
            for t in uniq_t:
                if t == u:
                    values[(u, t)] = 0.0
                    continue
                if memo is not None:
                    got = memo.get(t)
                    if got is not None:
                        values[(u, t)] = got
                        self._stats["memo_hits"] += 1
                        continue
                missing.setdefault(u, []).append(t)
        if missing:
            need_t = list(
                dict.fromkeys(t for ts in missing.values() for t in ts)
            )
            index_of = {t: j for j, t in enumerate(need_t)}
            bwd: dict[int, SearchResult] = {}
            bucket: dict[int, list[tuple[int, float]]] = {}
            for j, t in enumerate(need_t):
                res = self._bwd(t)
                bwd[t] = res
                for m, dm in res[0].items():
                    bucket.setdefault(m, []).append((j, dm))
                self._stats["bucket_entries"] += len(res[0])
            k = len(need_t)
            for u, targets in missing.items():
                fwd = self._fwd(u)
                best = [_INF] * k
                meet = [-1] * k
                for m, dm in fwd[0].items():
                    hits = bucket.get(m)
                    if hits is None:
                        continue
                    for j, dt in hits:
                        cand = dm + dt
                        if cand < best[j]:
                            best[j] = cand
                            meet[j] = m
                for t in targets:
                    j = index_of[t]
                    if meet[j] < 0:
                        values[(u, t)] = _INF
                    else:
                        values[(u, t)] = self._rectify(u, t, meet[j], fwd, bwd[t])
        out = np.empty((len(us_i), len(vs_i)), dtype=np.float64)
        for i, u in enumerate(us_i):
            row = rows.get(u)
            if row is not None:
                out[i] = row
            else:
                for j, t in enumerate(vs_i):
                    out[i, j] = values[(u, t)]
        self._mat[mat_key] = out
        if len(self._mat) > MAT_CACHE_SIZE:
            self._mat.popitem(last=False)
        return out

    def path(self, u: int, v: int) -> list[int] | None:
        """Shortest-path vertex list via shortcut unpacking, or ``None``."""
        if u == v:
            return [u]
        self._stats["queries"] += 1
        fwd = self._fwd(u)
        bwd = self._bwd(v)
        bd = bwd[0]
        best = _INF
        meet = -1
        for m, dm in fwd[0].items():
            dt = bd.get(m)
            if dt is not None:
                cand = dm + dt
                if cand < best:
                    best = cand
                    meet = m
        if meet < 0:
            return None
        steps = self._pair_steps(u, v, meet, fwd, bwd)
        # Feed the rectification memo while the steps are in hand — path
        # and distance queries for the same pair share one unpack.
        memo = self._memo_for(u)
        d = 0.0
        for x, w in steps:
            known = memo.get(x)
            if known is None:
                d = d + w
                memo[x] = d
            else:
                d = known
        return [u] + [x for x, _w in steps]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict[str, int]:
        """Current ``sp.ch.*`` tallies (monotone except ``shortcuts``)."""
        s = self._stats
        return {
            "sp.ch.queries": s["queries"],
            "sp.ch.fwd_searches": s["fwd_searches"],
            "sp.ch.bwd_searches": s["bwd_searches"],
            "sp.ch.settled": s["settled"],
            "sp.ch.bucket_entries": s["bucket_entries"],
            "sp.ch.memo_hits": s["memo_hits"],
            "sp.ch.mat_hits": s["mat_hits"],
            "sp.ch.rect_steps": s["rect_steps"],
            "sp.ch.shortcuts": self.num_shortcuts,
        }

    def memory_bytes(self) -> int:
        """Bytes held by the hierarchy arrays (not the query caches)."""
        return sum(int(a.nbytes) for a in self._arrays.values())

    def is_mmapped(self) -> bool:
        """Whether the attached arrays are memory-mapped files."""
        return any(isinstance(a, np.memmap) for a in self._arrays.values())

    def mean_search_space(self, samples: Sequence[int]) -> float:
        """Mean settled vertices of a fresh upward search (diagnostics)."""
        if not samples:
            return 0.0
        total = 0
        for s in samples:
            dist, _ = self._search(
                int(s), self._up_indptr, self._up_head, self._up_w
            )
            total += len(dist)
        return total / len(samples)


def unreachable(value: float) -> bool:
    """Whether a rectified distance denotes "no path" (``inf``)."""
    return math.isinf(value)
