"""Geographic primitives shared by the road-network and clustering code.

The paper works with latitude/longitude pairs from OpenStreetMap and the
Didi GAIA trace.  Internally we keep every coordinate on a local planar
projection in metres, which makes distance computations exact, cheap and
easy to reason about.  This module provides the conversions between the
two representations plus the small vector helpers (bearing, cosine
similarity) that the mobility-clustering machinery builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

EARTH_RADIUS_M = 6_371_000.0

#: Reference origin used when projecting synthetic city coordinates to
#: latitude/longitude.  The value is the approximate centre of Chengdu,
#: the city whose trace the paper evaluates on.
CHENGDU_LAT = 30.6598
CHENGDU_LNG = 104.0633


@dataclass(frozen=True, slots=True)
class Point:
    """A point on the local planar projection, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def haversine_m(lat1: float, lng1: float, lat2: float, lng2: float) -> float:
    """Great-circle distance between two lat/lng pairs, in metres."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lng2 - lng1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


def latlng_to_xy(
    lat: float,
    lng: float,
    origin_lat: float = CHENGDU_LAT,
    origin_lng: float = CHENGDU_LNG,
) -> Point:
    """Project a lat/lng pair onto the local tangent plane at ``origin``.

    An equirectangular projection is accurate to well under a metre over
    the tens of kilometres a city network spans, which is all the
    ridesharing algorithms need.
    """
    x = math.radians(lng - origin_lng) * EARTH_RADIUS_M * math.cos(math.radians(origin_lat))
    y = math.radians(lat - origin_lat) * EARTH_RADIUS_M
    return Point(x, y)


def xy_to_latlng(
    x: float,
    y: float,
    origin_lat: float = CHENGDU_LAT,
    origin_lng: float = CHENGDU_LNG,
) -> tuple[float, float]:
    """Inverse of :func:`latlng_to_xy`."""
    lat = origin_lat + math.degrees(y / EARTH_RADIUS_M)
    lng = origin_lng + math.degrees(x / (EARTH_RADIUS_M * math.cos(math.radians(origin_lat))))
    return lat, lng


def euclidean(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between ``(ax, ay)`` and ``(bx, by)``."""
    return math.hypot(ax - bx, ay - by)


def cosine_similarity(ax: float, ay: float, bx: float, by: float) -> float:
    """Cosine of the angle between vectors ``(ax, ay)`` and ``(bx, by)``.

    Degenerate (zero-length) vectors are treated as perfectly aligned
    with everything: a request whose origin equals its destination
    imposes no directional constraint, so it should never be rejected by
    the direction test.
    """
    # Rescale each vector by its largest component first: denormal
    # inputs otherwise underflow in the norm computations and produce
    # values outside [-1, 1].
    scale_a = max(abs(ax), abs(ay))
    scale_b = max(abs(bx), abs(by))
    if scale_a == 0.0 or scale_b == 0.0:
        return 1.0
    ax, ay = ax / scale_a, ay / scale_a
    bx, by = bx / scale_b, by / scale_b
    norm_a = math.hypot(ax, ay)
    norm_b = math.hypot(bx, by)
    value = (ax * bx + ay * by) / (norm_a * norm_b)
    return max(-1.0, min(1.0, value))


def bearing_deg(ax: float, ay: float, bx: float, by: float) -> float:
    """Bearing of the vector from ``(ax, ay)`` to ``(bx, by)`` in degrees.

    Measured counter-clockwise from the positive x axis, in ``[0, 360)``.
    """
    angle = math.degrees(math.atan2(by - ay, bx - ax))
    return angle % 360.0


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty iterable of :class:`Point`."""
    xs = 0.0
    ys = 0.0
    n = 0
    for p in points:
        xs += p.x
        ys += p.y
        n += 1
    if n == 0:
        raise ValueError("centroid of an empty point set is undefined")
    return Point(xs / n, ys / n)
