"""Shortest-path engines over :class:`~repro.network.graph.RoadNetwork`.

The paper precomputes and caches shortest paths between all vertex pairs
so that a shortest-path query costs O(1) during matching (Section V-A4).
:class:`ShortestPathEngine` reproduces that: on graphs small enough it
builds the full all-pairs matrix with scipy's C Dijkstra; on larger
graphs it falls back to per-source computation with an LRU-style cache,
which keeps memory bounded while staying fast for the skewed query
distributions a dispatcher generates.

:func:`dijkstra_restricted` is the segment-level router used by both
basic routing (Algorithm 3) and probabilistic routing (Algorithm 4): a
pure-Python Dijkstra over an arbitrary *allowed vertex set* (the union
of the partitions that survived partition filtering), optionally with
additive per-vertex weights.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from collections.abc import Callable, Collection, Mapping

import numpy as np
from scipy.sparse import csgraph

from .graph import RoadNetwork

#: Above this vertex count the full all-pairs matrix is not materialised.
FULL_APSP_LIMIT = 6_000

#: Default number of per-source Dijkstra results kept by the lazy cache.
LAZY_CACHE_SIZE = 4_096

_UNREACHABLE = np.inf


class PathNotFound(RuntimeError):
    """Raised when no path exists between the requested vertices."""


class ShortestPathEngine:
    """Cached shortest-path distances and paths on a road network.

    Parameters
    ----------
    network:
        The road network to route on.
    mode:
        ``"full"`` precomputes the all-pairs matrix up front, ``"lazy"``
        computes single-source trees on demand, ``"auto"`` (default)
        picks ``"full"`` below :data:`FULL_APSP_LIMIT` vertices.
    cache_size:
        Number of source trees retained in ``"lazy"`` mode.
    """

    def __init__(
        self,
        network: RoadNetwork,
        mode: str = "auto",
        cache_size: int = LAZY_CACHE_SIZE,
    ) -> None:
        if mode not in ("auto", "full", "lazy"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "auto":
            mode = "full" if network.num_vertices <= FULL_APSP_LIMIT else "lazy"
        self._network = network
        self._mode = mode
        self._cache_size = cache_size
        self._dist: np.ndarray | None = None
        self._pred: np.ndarray | None = None
        self._lazy: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        #: Source-tree queries answered from cache (in ``full`` mode every
        #: query is a hit: the whole matrix is the cache).  Plain integers
        #: on purpose — this is the engine's hottest path, so the
        #: observability layer harvests them in bulk at end of run instead
        #: of being called per query.
        self.cache_hits = 0
        #: Lazy-mode queries that had to run a fresh single-source Dijkstra.
        self.cache_misses = 0
        if mode == "full":
            self._build_full()

    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The network this engine routes on."""
        return self._network

    @property
    def mode(self) -> str:
        """``"full"`` or ``"lazy"``."""
        return self._mode

    def _build_full(self) -> None:
        mat = self._network.to_csr()
        dist, pred = csgraph.dijkstra(mat, directed=True, return_predecessors=True)
        self._dist = dist
        self._pred = pred

    def _source_tree(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        if self._mode == "full":
            assert self._dist is not None and self._pred is not None
            self.cache_hits += 1
            return self._dist[source], self._pred[source]
        tree = self._lazy.get(source)
        if tree is not None:
            self._lazy.move_to_end(source)
            self.cache_hits += 1
            return tree
        self.cache_misses += 1
        mat = self._network.to_csr()
        dist, pred = csgraph.dijkstra(
            mat, directed=True, indices=source, return_predecessors=True
        )
        tree = (dist, pred)
        self._lazy[source] = tree
        if len(self._lazy) > self._cache_size:
            self._lazy.popitem(last=False)
        return tree

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance_m(self, u: int, v: int) -> float:
        """Shortest-path distance from ``u`` to ``v`` in metres.

        Returns ``inf`` when ``v`` is unreachable from ``u``.
        """
        if u == v:
            return 0.0
        dist, _ = self._source_tree(u)
        return float(dist[v])

    def cost(self, u: int, v: int) -> float:
        """Shortest-path travel cost from ``u`` to ``v`` in seconds.

        This is the ``cost(u, v)`` of the paper under the network's
        constant speed.  Returns ``inf`` when unreachable.
        """
        return self.distance_m(u, v) / self._network.speed_mps

    def reachable(self, u: int, v: int) -> bool:
        """Whether ``v`` can be reached from ``u``."""
        return self.distance_m(u, v) != _UNREACHABLE

    def path(self, u: int, v: int) -> list[int]:
        """Shortest path from ``u`` to ``v`` as a vertex list (inclusive).

        Raises :class:`PathNotFound` when no path exists.
        """
        if u == v:
            return [u]
        dist, pred = self._source_tree(u)
        if not np.isfinite(dist[v]):
            raise PathNotFound(f"no path from {u} to {v}")
        out = [v]
        node = v
        while node != u:
            node = int(pred[node])
            out.append(node)
        out.reverse()
        return out

    def distances_from(self, source: int) -> np.ndarray:
        """Vector of shortest distances (metres) from ``source``."""
        dist, _ = self._source_tree(source)
        return dist.copy()

    def eccentricity_m(self, source: int) -> float:
        """Largest finite shortest-path distance from ``source``."""
        dist, _ = self._source_tree(source)
        finite = dist[np.isfinite(dist)]
        return float(finite.max()) if finite.size else 0.0

    @property
    def lazy_cache_len(self) -> int:
        """Source trees currently retained by the lazy cache."""
        return len(self._lazy)

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/size snapshot for the observability layer."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._lazy),
        }

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the cached structures."""
        total = 0
        if self._dist is not None:
            total += self._dist.nbytes
        if self._pred is not None:
            total += self._pred.nbytes
        for dist, pred in self._lazy.values():
            total += dist.nbytes + pred.nbytes
        return total


def dijkstra_restricted(
    network: RoadNetwork,
    source: int,
    target: int,
    allowed: Collection[int] | None = None,
    vertex_weight: Mapping[int, float] | Callable[[int], float] | None = None,
) -> tuple[float, list[int]]:
    """Dijkstra from ``source`` to ``target`` over an allowed vertex set.

    Parameters
    ----------
    allowed:
        Vertices the path may use.  ``source`` and ``target`` are always
        admitted.  ``None`` means the whole graph.
    vertex_weight:
        Optional additive weight charged on *entering* a vertex, used by
        probabilistic routing where vertex ``v_c`` carries weight
        ``1 / psi_c`` (Algorithm 4, step 3).  May be a mapping (missing
        vertices cost 0) or a callable.

    Returns
    -------
    (cost, path):
        ``cost`` is the generalised path cost in seconds (edge travel
        times plus vertex weights); ``path`` the vertex list.

    Raises
    ------
    PathNotFound
        When ``target`` is unreachable within ``allowed``.
    """
    if allowed is not None and not isinstance(allowed, (set, frozenset)):
        allowed = set(allowed)

    if vertex_weight is None:
        def weight_of(_v: int) -> float:
            return 0.0
    elif callable(vertex_weight):
        weight_of = vertex_weight
    else:
        mapping = vertex_weight

        def weight_of(v: int) -> float:
            return mapping.get(v, 0.0)

    speed = network.speed_mps
    dist: dict[int, float] = {source: 0.0}
    prev: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    done: set[int] = set()

    while heap:
        d, u = heapq.heappop(heap)
        if u in done:
            continue
        if u == target:
            path = [u]
            while path[-1] != source:
                path.append(prev[path[-1]])
            path.reverse()
            return d, path
        done.add(u)
        for v, length in network.neighbors(u):
            if v in done:
                continue
            if allowed is not None and v != target and v not in allowed:
                continue
            nd = d + length / speed + weight_of(v)
            if nd < dist.get(v, _UNREACHABLE):
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, v))

    raise PathNotFound(
        f"no path from {source} to {target} within the allowed vertex set"
    )
