"""Shortest-path engines over :class:`~repro.network.graph.RoadNetwork`.

The paper precomputes and caches shortest paths between all vertex pairs
so that a shortest-path query costs O(1) during matching (Section V-A4).
:class:`ShortestPathEngine` reproduces that: on graphs small enough it
builds the full all-pairs matrix with scipy's C Dijkstra; on larger
graphs it falls back to per-source computation with an LRU-style cache,
which keeps memory bounded while staying fast for the skewed query
distributions a dispatcher generates.  Above :data:`FULL_APSP_LIMIT`
the default is now the contraction-hierarchy backend (``mode="ch"``,
:mod:`repro.network.ch`): near-constant point-to-point and bucket-based
many-to-many queries with rectified, bit-identical distances, and a
persisted hierarchy so warm runs skip preprocessing.  The
``REPRO_SP_MODE`` environment variable overrides the ``"auto"``
resolution (see :data:`SP_MODE_ENV`).

:func:`dijkstra_restricted` is the segment-level router used by both
basic routing (Algorithm 3) and probabilistic routing (Algorithm 4): a
Dijkstra over an arbitrary *allowed vertex set* (the union of the
partitions that survived partition filtering), optionally with additive
per-vertex weights.  Its default fast path builds the induced CSR
submatrix of the allowed set — with vertex weights folded into the
incoming-edge costs — and runs scipy's C Dijkstra; induced subgraphs
are LRU-cached per (network, corridor) so repeated legs through the
same corridor skip the rebuild.  The pure-Python heap implementation is
retained as the reference path (``method="scalar"``) that the kernel
tests diff against.
"""

from __future__ import annotations

import heapq
import os
from collections import OrderedDict
from collections.abc import Callable, Collection, Mapping, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from .ch import ContractionHierarchy
from .graph import RoadNetwork

#: Above this vertex count the full all-pairs matrix is not materialised.
FULL_APSP_LIMIT = 6_000

#: Environment override for ``mode="auto"`` resolution: one of
#: ``full`` / ``lazy`` / ``ch`` (empty or ``auto`` keeps the default
#: rule).  Explicit non-auto ``mode=`` arguments always win.
SP_MODE_ENV = "REPRO_SP_MODE"

_SP_MODES = ("full", "lazy", "ch")


def resolve_sp_mode(mode: str, num_vertices: int) -> str:
    """Resolve an engine mode string against the env override and size rule.

    ``"auto"`` consults :data:`SP_MODE_ENV` first, then picks ``full``
    at or below :data:`FULL_APSP_LIMIT` vertices and ``ch`` above it.
    """
    if mode == "auto":
        env = os.environ.get(SP_MODE_ENV, "").strip().lower()
        if env in _SP_MODES:
            mode = env
        elif env and env != "auto":
            raise ValueError(f"invalid {SP_MODE_ENV}={env!r}; use auto/full/lazy/ch")
    if mode == "auto":
        mode = "full" if num_vertices <= FULL_APSP_LIMIT else "ch"
    if mode not in _SP_MODES:
        raise ValueError(f"unknown mode {mode!r}")
    return mode

#: Default number of per-source Dijkstra results kept by the lazy cache.
LAZY_CACHE_SIZE = 4_096

#: Induced corridor subgraphs kept by the restricted-Dijkstra LRU cache.
SUBGRAPH_CACHE_SIZE = 256

_UNREACHABLE = np.inf


class PathNotFound(RuntimeError):
    """Raised when no path exists between the requested vertices."""


class ShortestPathEngine:
    """Cached shortest-path distances and paths on a road network.

    Parameters
    ----------
    network:
        The road network to route on.
    mode:
        ``"full"`` precomputes the all-pairs matrix up front, ``"lazy"``
        computes single-source trees on demand, ``"ch"`` builds (or
        attaches) a contraction hierarchy (:mod:`repro.network.ch`),
        ``"auto"`` (default) picks ``"full"`` at or below
        :data:`FULL_APSP_LIMIT` vertices and ``"ch"`` above — unless
        the :data:`SP_MODE_ENV` environment variable overrides it.
    cache_size:
        Number of source trees retained by the per-source row cache
        (the primary store in ``"lazy"`` mode; the row-query fallback
        in ``"ch"`` mode).
    full_arrays:
        Optional precomputed ``(dist, pred)`` matrices for ``"full"``
        mode — typically memory-mapped ``.npy`` views served by the
        artifact store (:mod:`repro.artifacts`), so concurrent sweep
        workers share pages zero-copy instead of each running (and
        holding) its own all-pairs Dijkstra.  Ignored in other modes.
    ch_arrays:
        Optional persisted hierarchy arrays for ``"ch"`` mode (the
        artifact-store warm path; usually mmapped).  Ignored in other
        modes.
    """

    #: ``stats()`` keys that are point-in-time gauges; every other key
    #: is a monotone tally that harvesters should turn into a delta.
    STAT_GAUGES = frozenset({"spe.cache_entries", "sp.ch.shortcuts"})

    def __init__(
        self,
        network: RoadNetwork,
        mode: str = "auto",
        cache_size: int = LAZY_CACHE_SIZE,
        full_arrays: tuple[np.ndarray, np.ndarray] | None = None,
        ch_arrays: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        if mode not in ("auto", "full", "lazy", "ch"):
            raise ValueError(f"unknown mode {mode!r}")
        mode = resolve_sp_mode(mode, network.num_vertices)
        self._network = network
        self._mode = mode
        self._cache_size = cache_size
        self._dist: np.ndarray | None = None
        self._pred: np.ndarray | None = None
        self._lazy: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        #: Source-tree queries answered from cache (in ``full`` mode every
        #: query is a hit: the whole matrix is the cache).  Plain integers
        #: on purpose — this is the engine's hottest path, so the
        #: observability layer harvests them in bulk at end of run instead
        #: of being called per query.
        self.cache_hits = 0
        #: Lazy-mode queries that had to run a fresh single-source Dijkstra.
        self.cache_misses = 0
        #: Whether this engine ran the all-pairs Dijkstra itself (False
        #: when the matrices were injected, e.g. from the artifact store).
        self.full_built = False
        #: Whether the full matrices are memory-mapped (zero-copy).
        self.full_mmapped = False
        #: The contraction hierarchy backing ``"ch"`` mode, if any.
        self._ch: ContractionHierarchy | None = None
        #: Whether this engine contracted the hierarchy itself (False
        #: when the arrays were injected from the artifact store).
        self.ch_built = False
        #: Whether the hierarchy arrays are memory-mapped (zero-copy).
        self.ch_mmapped = False
        if mode == "ch":
            if ch_arrays is not None:
                self._ch = ContractionHierarchy.from_arrays(network, ch_arrays)
                self.ch_mmapped = self._ch.is_mmapped()
            else:
                self._ch = ContractionHierarchy.build(network)
                self.ch_built = True
        if mode == "full":
            if full_arrays is not None:
                dist, pred = full_arrays
                n = network.num_vertices
                if dist.shape != (n, n) or pred.shape != (n, n):
                    raise ValueError(
                        f"full_arrays must both be ({n}, {n}); "
                        f"got {dist.shape} and {pred.shape}"
                    )
                self._dist = dist
                self._pred = pred
                self.full_mmapped = isinstance(dist, np.memmap)
            else:
                self._build_full()
                self.full_built = True

    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The network this engine routes on."""
        return self._network

    @property
    def mode(self) -> str:
        """``"full"``, ``"lazy"`` or ``"ch"``."""
        return self._mode

    @property
    def hierarchy(self) -> ContractionHierarchy | None:
        """The contraction hierarchy (``"ch"`` mode only), else ``None``."""
        return self._ch

    def _build_full(self) -> None:
        mat = self._network.to_csr()
        dist, pred = csgraph.dijkstra(mat, directed=True, return_predecessors=True)
        self._dist = dist
        self._pred = pred

    def _source_tree(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        if self._mode == "full":
            assert self._dist is not None and self._pred is not None
            self.cache_hits += 1
            return self._dist[source], self._pred[source]
        tree = self._lazy.get(source)
        if tree is not None:
            self._lazy.move_to_end(source)
            self.cache_hits += 1
            return tree
        self.cache_misses += 1
        mat = self._network.to_csr()
        dist, pred = csgraph.dijkstra(
            mat, directed=True, indices=source, return_predecessors=True
        )
        tree = (dist, pred)
        self._lazy[source] = tree
        if len(self._lazy) > self._cache_size:
            self._lazy.popitem(last=False)
        return tree

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance_m(self, u: int, v: int) -> float:
        """Shortest-path distance from ``u`` to ``v`` in metres.

        Returns ``inf`` when ``v`` is unreachable from ``u``.
        """
        if u == v:
            return 0.0
        if self._ch is not None:
            return self._ch.distance_m(u, v)
        dist, _ = self._source_tree(u)
        return float(dist[v])

    def cost(self, u: int, v: int) -> float:
        """Shortest-path travel cost from ``u`` to ``v`` in seconds.

        This is the ``cost(u, v)`` of the paper under the network's
        constant speed.  Returns ``inf`` when unreachable.
        """
        return self.distance_m(u, v) / self._network.speed_mps

    def reachable(self, u: int, v: int) -> bool:
        """Whether ``v`` can be reached from ``u``."""
        return self.distance_m(u, v) != _UNREACHABLE

    def cost_many(self, u: int, vs: Sequence[int] | np.ndarray) -> np.ndarray:
        """Travel costs (seconds) from ``u`` to every vertex in ``vs``.

        One numpy slice of the cached source tree (full mode: a row of
        the all-pairs matrix) instead of ``len(vs)`` scalar queries.
        Entry-wise bit-identical to :meth:`cost`; unreachable targets
        are ``inf``.
        """
        vs = np.asarray(vs, dtype=np.int64)
        if self._ch is not None:
            return self._ch.cost_matrix_m([u], vs.tolist())[0] / self._network.speed_mps
        dist, _ = self._source_tree(u)
        return dist[vs] / self._network.speed_mps

    def cost_matrix(
        self, us: Sequence[int] | np.ndarray, vs: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """``(len(us), len(vs))`` travel-cost matrix in seconds.

        Full mode slices the APSP matrix in one fancy-index operation;
        lazy mode gathers one cached source tree per *unique* source.
        ``out[i, j]`` is bit-identical to ``cost(us[i], vs[j])``.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        speed = self._network.speed_mps
        if self._ch is not None:
            return self._ch.cost_matrix_m(us.tolist(), vs.tolist()) / speed
        if self._mode == "full":
            assert self._dist is not None
            self.cache_hits += us.size
            return self._dist[us[:, None], vs[None, :]] / speed
        uniq, inverse = np.unique(us, return_inverse=True)
        rows = np.empty((uniq.size, vs.size), dtype=np.float64)
        for k, u in enumerate(uniq):
            dist, _ = self._source_tree(int(u))
            rows[k] = dist[vs]
        return rows[inverse] / speed

    def path(self, u: int, v: int) -> list[int]:
        """Shortest path from ``u`` to ``v`` as a vertex list (inclusive).

        Raises :class:`PathNotFound` when no path exists.
        """
        if u == v:
            return [u]
        if self._ch is not None:
            found = self._ch.path(u, v)
            if found is None:
                raise PathNotFound(f"no path from {u} to {v}")
            return found
        dist, pred = self._source_tree(u)
        if not np.isfinite(dist[v]):
            raise PathNotFound(f"no path from {u} to {v}")
        out = [v]
        node = v
        while node != u:
            node = int(pred[node])
            out.append(node)
        out.reverse()
        return out

    def dist_row(self, source: int) -> np.ndarray:
        """The raw distance row (metres) of ``source`` — a cached view.

        This is the zero-copy primitive behind the small-batch fast
        paths: callers hold the row and read single entries with
        ``row.item(v)``, which matches :meth:`distance_m` bit for bit
        (``row.item(v) / speed`` equals :meth:`cost`).  Works in every
        mode; lazy and ch modes compute/cache the source tree on demand
        (full rows are the one query shape a hierarchy does not
        accelerate, so ``ch`` serves them from the same per-source LRU
        as lazy mode — values identical either way).  Treat the row as
        read-only.
        """
        dist, _ = self._source_tree(source)
        return dist

    def dist_col(self, target: int) -> np.ndarray | None:
        """Distance column (metres) *into* ``target``, or ``None``.

        Only the full all-pairs matrix materialises columns; lazy mode
        returns ``None`` and callers fall back to the batched
        :meth:`cost_matrix` query.  ``col.item(u) / speed`` is
        bit-identical to ``cost(u, target)``.
        """
        if self._mode != "full":
            return None
        assert self._dist is not None
        self.cache_hits += 1
        return self._dist[:, target]

    def distances_from(self, source: int) -> np.ndarray:
        """Vector of shortest distances (metres) from ``source``.

        Returns a *read-only view* of the cached source tree — callers
        that need to mutate must copy.  This keeps the per-query cost at
        O(1) instead of O(V) (the copy used to dominate landmark-cost
        construction on large networks).
        """
        dist, _ = self._source_tree(source)
        view = dist.view()
        view.flags.writeable = False
        return view

    def eccentricity_m(self, source: int) -> float:
        """Largest finite shortest-path distance from ``source``."""
        dist, _ = self._source_tree(source)
        finite = dist[np.isfinite(dist)]
        return float(finite.max()) if finite.size else 0.0

    @property
    def lazy_cache_len(self) -> int:
        """Source trees currently retained by the lazy cache."""
        return len(self._lazy)

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/size snapshot of the per-source row cache."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._lazy),
        }

    def stats(self) -> dict[str, int]:
        """Every engine counter under its fully-qualified metric name.

        The single harvesting surface for the observability layer: the
        simulator snapshots this at run start and gauges the deltas at
        run end (keys in :data:`STAT_GAUGES` are point-in-time values
        and are reported as-is).  Contains ``spe.cache_*`` always and
        ``sp.ch.*`` in ``"ch"`` mode.
        """
        out = {
            "spe.cache_hits": self.cache_hits,
            "spe.cache_misses": self.cache_misses,
            "spe.cache_entries": len(self._lazy),
        }
        if self._ch is not None:
            out.update(self._ch.stats_snapshot())
        return out

    def full_matrices(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The ``(dist, pred)`` all-pairs matrices, or ``None`` in lazy mode.

        Used by the artifact store to persist a freshly built matrix;
        treat the arrays as read-only.
        """
        if self._dist is None or self._pred is None:
            return None
        return self._dist, self._pred

    def hierarchy_arrays(self) -> dict[str, np.ndarray] | None:
        """The hierarchy's named arrays, or ``None`` outside ``"ch"`` mode.

        Used by the artifact store to persist a freshly contracted
        hierarchy; treat the arrays as read-only.
        """
        if self._ch is None:
            return None
        return self._ch.to_arrays()

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the cached structures.

        Memory-mapped full matrices count their full (virtual) size;
        see :meth:`mmap_bytes` for the share that is file-backed and
        shared between processes rather than private.
        """
        total = 0
        if self._dist is not None:
            total += self._dist.nbytes
        if self._pred is not None:
            total += self._pred.nbytes
        if self._ch is not None:
            total += self._ch.memory_bytes()
        for dist, pred in self._lazy.values():
            total += dist.nbytes + pred.nbytes
        return total

    def mmap_bytes(self) -> int:
        """Bytes of the footprint that are memory-mapped (file-backed)."""
        total = 0
        if self.full_mmapped:
            assert self._dist is not None and self._pred is not None
            total += self._dist.nbytes + self._pred.nbytes
        if self.ch_mmapped:
            assert self._ch is not None
            total += self._ch.memory_bytes()
        return total


class _InducedSubgraph:
    """One cached corridor: the induced CSR submatrix of an allowed set."""

    __slots__ = ("nodes", "indptr", "indices", "data_s")

    def __init__(self, network: RoadNetwork, allowed: frozenset) -> None:
        nodes = np.fromiter(allowed, dtype=np.int64, count=len(allowed))  # repro-lint: disable=REP001 reason=order canonicalised by the sort on the next line
        nodes.sort()
        sub = network.to_csr()[nodes][:, nodes].tocsr()
        self.nodes = nodes
        self.indptr = sub.indptr
        self.indices = sub.indices
        # Edge lengths become travel times once, at build.
        self.data_s = sub.data / network.speed_mps

    def local_of(self, v: int) -> int:
        """Local index of global vertex ``v``, or -1 when absent."""
        i = int(np.searchsorted(self.nodes, v))
        if i < self.nodes.size and self.nodes[i] == v:
            return i
        return -1

    def matrix(self, vertex_weight_local: np.ndarray | None) -> sparse.csr_matrix:
        """CSR travel-time matrix, vertex weights folded into in-edges."""
        data = self.data_s
        if vertex_weight_local is not None:
            data = data + vertex_weight_local[self.indices]
        n = self.nodes.size
        return sparse.csr_matrix((data, self.indices, self.indptr), shape=(n, n))

    def memory_bytes(self) -> int:
        return (
            self.nodes.nbytes + self.indptr.nbytes
            + self.indices.nbytes + self.data_s.nbytes
        )


#: LRU of induced corridor subgraphs keyed by (network, frozen allowed set).
_SUBGRAPH_CACHE: OrderedDict[tuple, _InducedSubgraph] = OrderedDict()
_SUBGRAPH_STATS = {"hits": 0, "builds": 0}


def _induced_subgraph(network: RoadNetwork, allowed: frozenset) -> _InducedSubgraph:
    # The LRU below is a pure memo: the cached subgraph is a function of
    # the key alone, so hits, misses and evictions cannot change any
    # dispatch decision — only how fast it is reached.
    key = (network, allowed)
    cached = _SUBGRAPH_CACHE.get(key)
    if cached is not None:
        _SUBGRAPH_CACHE.move_to_end(key)  # repro-lint: disable=REP101 reason=LRU bookkeeping of a pure memo; value depends only on key
        _SUBGRAPH_STATS["hits"] += 1  # repro-lint: disable=REP101 reason=observability counter; never read by dispatch decisions
        return cached
    _SUBGRAPH_STATS["builds"] += 1  # repro-lint: disable=REP101 reason=observability counter; never read by dispatch decisions
    sub = _InducedSubgraph(network, allowed)
    _SUBGRAPH_CACHE[key] = sub  # repro-lint: disable=REP101 reason=pure memo insert; value depends only on key
    while len(_SUBGRAPH_CACHE) > SUBGRAPH_CACHE_SIZE:
        _SUBGRAPH_CACHE.popitem(last=False)  # repro-lint: disable=REP101 reason=bounded LRU eviction of a pure memo
    return sub


def subgraph_cache_stats() -> dict[str, int]:
    """Hit/build/size snapshot of the corridor-subgraph LRU cache."""
    return {
        "hits": _SUBGRAPH_STATS["hits"],
        "builds": _SUBGRAPH_STATS["builds"],
        "entries": len(_SUBGRAPH_CACHE),
        "memory_bytes": sum(s.memory_bytes() for s in _SUBGRAPH_CACHE.values()),
    }


def clear_subgraph_cache() -> None:
    """Drop every cached corridor subgraph (tests / repartitioning)."""
    _SUBGRAPH_CACHE.clear()
    _SUBGRAPH_STATS["hits"] = 0
    _SUBGRAPH_STATS["builds"] = 0


def _resolve_weight_fn(
    vertex_weight: Mapping[int, float] | Callable[[int], float] | None,
) -> Callable[[int], float] | None:
    if vertex_weight is None:
        return None
    if callable(vertex_weight):
        return vertex_weight
    mapping = vertex_weight

    def weight_of(v: int) -> float:
        return mapping.get(v, 0.0)

    return weight_of


def dijkstra_restricted(
    network: RoadNetwork,
    source: int,
    target: int,
    allowed: Collection[int] | None = None,
    vertex_weight: Mapping[int, float] | Callable[[int], float] | None = None,
    method: str = "auto",
) -> tuple[float, list[int]]:
    """Dijkstra from ``source`` to ``target`` over an allowed vertex set.

    Parameters
    ----------
    allowed:
        Vertices the path may use.  ``source`` and ``target`` are always
        admitted.  ``None`` means the whole graph.
    vertex_weight:
        Optional additive weight charged on *entering* a vertex, used by
        probabilistic routing where vertex ``v_c`` carries weight
        ``1 / psi_c`` (Algorithm 4, step 3).  May be a mapping (missing
        vertices cost 0) or a callable.
    method:
        ``"auto"`` (default) runs scipy's C Dijkstra on the induced CSR
        submatrix of ``allowed`` (LRU-cached per corridor), falling
        back to the scalar path when the endpoints lie outside
        ``allowed``; ``"csr"`` forces the fast path; ``"scalar"``
        forces the pure-Python reference implementation.

    Returns
    -------
    (cost, path):
        ``cost`` is the generalised path cost in seconds (edge travel
        times plus vertex weights); ``path`` the vertex list.  When
        equal-cost paths exist the two methods may return different
        (equally cheap) vertex sequences.

    Raises
    ------
    PathNotFound
        When ``target`` is unreachable within ``allowed``.
    """
    if method not in ("auto", "csr", "scalar"):
        raise ValueError(f"unknown method {method!r}")
    if method != "scalar" and allowed is not None:
        if not isinstance(allowed, frozenset):
            allowed = frozenset(allowed)
        if source in allowed and target in allowed:
            return _dijkstra_restricted_csr(network, source, target, allowed, vertex_weight)
        if method == "csr":
            raise ValueError("csr method requires source and target inside `allowed`")
    return _dijkstra_restricted_scalar(network, source, target, allowed, vertex_weight)


def _dijkstra_restricted_csr(
    network: RoadNetwork,
    source: int,
    target: int,
    allowed: frozenset,
    vertex_weight: Mapping[int, float] | Callable[[int], float] | None,
) -> tuple[float, list[int]]:
    """CSR fast path: scipy Dijkstra on the cached induced subgraph."""
    sub = _induced_subgraph(network, allowed)
    ls = sub.local_of(source)
    lt = sub.local_of(target)
    if source == target:
        return 0.0, [source]
    weight_of = _resolve_weight_fn(vertex_weight)
    w_local = None
    if weight_of is not None:
        w_local = np.fromiter(
            (weight_of(int(v)) for v in sub.nodes), dtype=np.float64, count=sub.nodes.size
        )
    dist, pred = csgraph.dijkstra(
        sub.matrix(w_local), directed=True, indices=ls, return_predecessors=True
    )
    if not np.isfinite(dist[lt]):
        raise PathNotFound(
            f"no path from {source} to {target} within the allowed vertex set"
        )
    local_path = [lt]
    node = lt
    while node != ls:
        node = int(pred[node])
        local_path.append(node)
    local_path.reverse()
    return float(dist[lt]), [int(sub.nodes[i]) for i in local_path]


def _dijkstra_restricted_scalar(
    network: RoadNetwork,
    source: int,
    target: int,
    allowed: Collection[int] | None,
    vertex_weight: Mapping[int, float] | Callable[[int], float] | None,
) -> tuple[float, list[int]]:
    """Reference implementation: pure-Python heap Dijkstra."""
    if allowed is not None and not isinstance(allowed, (set, frozenset)):
        allowed = set(allowed)

    weight_of = _resolve_weight_fn(vertex_weight)
    speed = network.speed_mps
    dist: dict[int, float] = {source: 0.0}
    prev: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    done: set[int] = set()

    while heap:
        d, u = heapq.heappop(heap)
        if u in done:
            continue
        if u == target:
            path = [u]
            while path[-1] != source:
                path.append(prev[path[-1]])
            path.reverse()
            return d, path
        done.add(u)
        for v, length in network.neighbors(u):
            if v in done:
                continue
            if allowed is not None and v != target and v not in allowed:
                continue
            # The vertex weight is folded into the edge cost *before*
            # adding to ``d`` so the accumulation order matches the CSR
            # fast path bit for bit.
            edge = length / speed if weight_of is None else length / speed + weight_of(v)
            nd = d + edge
            if nd < dist.get(v, _UNREACHABLE):
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, v))

    raise PathNotFound(
        f"no path from {source} to {target} within the allowed vertex set"
    )
