"""Taxi state and route execution (Definitions 3–5 of the paper).

A taxi's status is its current location, its schedule (a stop sequence)
and its route (the concrete vertex path realising the schedule, with an
arrival time per vertex).  The simulator drives taxis forward in time
by consuming their routes vertex by vertex; stops fire when their
vertex position on the route is reached, moving passengers on and off.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..demand.request import RideRequest, ServedTrip
from .schedule import Stop, StopKind

PathFn = Callable[[int, int], list[int]]


class TaxiError(RuntimeError):
    """Raised on inconsistent taxi-state transitions."""


@dataclass
class TaxiRoute:
    """A planned route: vertices, per-vertex arrival times, stop markers.

    Attributes
    ----------
    nodes:
        Vertex sequence starting at the planning position.
    times:
        Arrival time (seconds) at each vertex; ``times[0]`` is the
        departure time at ``nodes[0]``.
    stop_positions:
        For each stop of the schedule (in order), the index into
        ``nodes`` where it is served.  Non-decreasing.
    """

    nodes: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    stop_positions: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.times):
            raise TaxiError("route nodes and times must have equal length")
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise TaxiError("route times must be non-decreasing")
        if any(b < a for a, b in zip(self.stop_positions, self.stop_positions[1:])):
            raise TaxiError("stop positions must be non-decreasing")
        if self.stop_positions and self.stop_positions[-1] >= len(self.nodes):
            raise TaxiError("stop position beyond route end")

    @property
    def empty(self) -> bool:
        """Whether there is nothing left to drive."""
        return not self.nodes

    @property
    def end_time(self) -> float:
        """Arrival time at the final vertex."""
        if self.empty:
            raise TaxiError("empty route has no end time")
        return self.times[-1]

    def total_cost(self) -> float:
        """Travel time from departure to the last vertex."""
        if self.empty:
            return 0.0
        return self.times[-1] - self.times[0]


def build_route(
    start_node: int,
    start_time: float,
    stops: Sequence[Stop],
    path_fn: PathFn,
    cost_of_path: Callable[[Sequence[int]], float],
) -> TaxiRoute:
    """Concatenate per-leg paths into a full route (the paper's ``|><|``).

    Parameters
    ----------
    path_fn:
        Returns the vertex path between two vertices (both inclusive);
        basic routing passes shortest paths, probabilistic routing its
        probability-weighted paths.
    cost_of_path:
        Travel time of a vertex path in seconds (normally
        ``network.path_cost_s``).
    """
    nodes = [start_node]
    times = [start_time]
    stop_positions: list[int] = []
    for stop in stops:
        leg = path_fn(nodes[-1], stop.node)
        if not leg or leg[0] != nodes[-1] or leg[-1] != stop.node:
            raise TaxiError(
                f"path_fn returned an invalid leg {leg!r} for "
                f"({nodes[-1]} -> {stop.node})"
            )
        t = times[-1]
        for u, v in zip(leg, leg[1:]):
            t += cost_of_path([u, v])
            nodes.append(v)
            times.append(t)
        stop_positions.append(len(nodes) - 1)
    return TaxiRoute(nodes=nodes, times=times, stop_positions=stop_positions)


@dataclass
class Taxi:
    """Mutable taxi state driven by the simulator.

    Attributes
    ----------
    taxi_id:
        Fleet-unique id.
    capacity:
        Maximum simultaneous passengers.
    loc:
        Last vertex reached (the taxi is at/just past this vertex).
    loc_time:
        The time the taxi was at ``loc``.
    schedule:
        Pending stops, in service order.
    route:
        Concrete route realising ``schedule`` (may be empty when idle).
    onboard:
        Requests whose passengers are currently in the car.
    assigned:
        Requests matched to this taxi but not yet picked up.
    """

    taxi_id: int
    capacity: int
    loc: int
    loc_time: float = 0.0
    schedule: list[Stop] = field(default_factory=list)
    route: TaxiRoute = field(default_factory=TaxiRoute)
    onboard: dict[int, RideRequest] = field(default_factory=dict)
    assigned: dict[int, RideRequest] = field(default_factory=dict)
    probabilistic_mode: bool = False
    #: Broken-down taxis stay in the fleet dict (their log entries and
    #: episode settlements remain addressable) but are skipped by the
    #: simulator and must never receive new plans.
    out_of_service: bool = False
    _route_cursor: int = 0
    _stops_fired: int = 0
    _onboard_pax: int = 0
    _assigned_pax: int = 0
    _stops_fired_total: int = 0

    # ------------------------------------------------------------------
    # derived state
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when the taxi has no pending stops."""
        return not self.schedule

    @property
    def cruising(self) -> bool:
        """True when idle but still following a stop-less (cruise) route.

        Demand-seeking and repositioning cruises are plans with no
        stops, so a cruising taxi is ``idle`` (matchable) yet moving; a
        fully-consumed cruise route is cleared by :meth:`advance`, so
        parked taxis always report ``False``.
        """
        return not self.schedule and self._route_cursor < len(self.route.nodes)

    @property
    def occupancy(self) -> int:
        """Passengers currently in the car (O(1), kept incrementally)."""
        return self._onboard_pax

    @property
    def committed(self) -> int:
        """Passengers onboard plus assigned-but-waiting (O(1))."""
        return self._onboard_pax + self._assigned_pax

    @property
    def idle_seats(self) -> int:
        """Free seats right now (onboard passengers only)."""
        return self.capacity - self.occupancy

    @property
    def stops_fired_total(self) -> int:
        """Lifetime count of executed stops (monotone, never reset).

        ``_stops_fired`` indexes into the *current* schedule and resets
        whenever a plan completes or is replaced, so comparing it across
        an :meth:`advance` call cannot tell whether stops actually fired
        — the simulator compares this counter instead.
        """
        return self._stops_fired_total

    def has_spare_commitment(self) -> bool:
        """Whether accepting one more single passenger could ever fit.

        A cheap necessary condition used to prune candidates: if even
        the peak commitment exceeds capacity the insertion enumeration
        cannot succeed.  (The exact check runs per schedule instance.)
        """
        return self.committed < self.capacity

    def position_at(self, now: float) -> tuple[int, float]:
        """Planning position: the next vertex and when it is reached.

        A taxi mid-edge cannot be re-routed until the next vertex, so
        replanning always starts from ``(next_vertex, arrival_time)``;
        an idle or at-vertex taxi plans from ``(loc, now)``.  Callers
        should :meth:`advance` the taxi to ``now`` first.
        """
        route = self.route
        if self._route_cursor < len(route.nodes):
            i = self._route_cursor
            return route.nodes[i], max(now, route.times[i])
        return self.loc, max(now, self.loc_time)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def set_plan(self, stops: list[Stop], route: TaxiRoute) -> None:
        """Install a new schedule and route (after a successful match).

        The route must start from the taxi's planning position and must
        serve exactly ``stops`` via its ``stop_positions``.
        """
        if len(route.stop_positions) != len(stops):
            raise TaxiError("route stop markers do not match the schedule")
        if self.out_of_service:
            raise TaxiError(f"taxi {self.taxi_id} is out of service")
        self.schedule = list(stops)
        self.route = route
        self._route_cursor = 0
        self._stops_fired = 0

    def clear_plan(self) -> None:
        """Drop the current schedule and route, leaving the taxi parked."""
        self.schedule = []
        self.route = TaxiRoute()
        self._route_cursor = 0
        self._stops_fired = 0

    def assign(self, request: RideRequest) -> None:
        """Record a new not-yet-picked-up request."""
        if request.request_id in self.assigned or request.request_id in self.onboard:
            raise TaxiError(f"request {request.request_id} already on taxi {self.taxi_id}")
        if self.out_of_service:
            raise TaxiError(f"taxi {self.taxi_id} is out of service")
        self.assigned[request.request_id] = request
        self._assigned_pax += request.num_passengers

    def unassign(self, request: RideRequest) -> None:
        """Withdraw a not-yet-picked-up request (passenger cancellation)."""
        rid = request.request_id
        if rid not in self.assigned:
            raise TaxiError(f"request {rid} is not assigned to taxi {self.taxi_id}")
        del self.assigned[rid]
        self._assigned_pax -= request.num_passengers

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def break_down(self) -> tuple[list[RideRequest], list[RideRequest]]:
        """Take the taxi out of service at its current location.

        Clears the plan and sheds every commitment, returning
        ``(onboard, assigned)`` requests in ascending-id order so the
        simulator can recover them deterministically.  Onboard
        passengers are considered dropped at :attr:`loc`.
        """
        onboard = [self.onboard[rid] for rid in sorted(self.onboard)]
        assigned = [self.assigned[rid] for rid in sorted(self.assigned)]
        self.onboard = {}
        self.assigned = {}
        self._onboard_pax = 0
        self._assigned_pax = 0
        self.clear_plan()
        self.out_of_service = True
        return onboard, assigned

    def apply_delay(self, delay_s: float) -> bool:
        """Shift every not-yet-reached route arrival by ``delay_s``.

        Models a zonal travel-time shock: the remainder of the current
        route takes ``delay_s`` seconds longer.  Returns False (no-op)
        when there is no remaining route or the delay is non-positive.
        The route object is replaced, never mutated in place — match
        results may still hold a reference to the original.
        """
        route = self.route
        cursor = self._route_cursor
        if delay_s <= 0.0 or cursor >= len(route.nodes):
            return False
        times = list(route.times)
        for i in range(cursor, len(times)):
            times[i] += delay_s
        self.route = TaxiRoute(
            nodes=list(route.nodes),
            times=times,
            stop_positions=list(route.stop_positions),
        )
        return True

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def advance(
        self,
        now: float,
        on_pickup: Callable[["Taxi", RideRequest, float], None] | None = None,
        on_dropoff: Callable[["Taxi", RideRequest, float], None] | None = None,
    ) -> list[tuple[int, float]]:
        """Drive the taxi forward to time ``now``.

        Consumes route vertices whose arrival time has passed, firing
        pick-up/drop-off stops in order.  Returns the list of
        ``(vertex, arrival_time)`` pairs traversed, which the simulator
        scans for offline-request encounters.
        """
        traversed: list[tuple[int, float]] = []
        route = self.route
        while self._route_cursor < len(route.nodes) and route.times[self._route_cursor] <= now:
            i = self._route_cursor
            node = route.nodes[i]
            t = route.times[i]
            traversed.append((node, t))
            self.loc = node
            self.loc_time = t
            # Fire every stop scheduled at this route position.
            while (
                self._stops_fired < len(route.stop_positions)
                and route.stop_positions[self._stops_fired] == i
            ):
                stop = self.schedule[self._stops_fired]
                self._fire_stop(stop, t, on_pickup, on_dropoff)
                self._stops_fired += 1
                self._stops_fired_total += 1
            self._route_cursor += 1

        # Tear down a completed plan.  The gate must not require
        # ``_stops_fired`` to be truthy (a zero-stop plan installed via
        # ``set_plan`` would otherwise never reset) and must also handle
        # a fully-fired schedule whose route carries trailing vertices:
        # such a taxi has served everyone, so the leftover tail is a
        # passenger-less cruise, not a reason to report busy — with the
        # old gate it reported non-idle with no pending stops and spun
        # the drain loop until the horizon.
        if self._stops_fired == len(self.schedule):
            if self._route_cursor >= len(route.nodes):
                if self.schedule or route.nodes:
                    self.clear_plan()
            elif self.schedule:
                # All stops served but vertices remain: demote the tail
                # to a cruise (idle semantics, position tracking intact).
                self.route = TaxiRoute(
                    nodes=list(route.nodes),
                    times=list(route.times),
                    stop_positions=[],
                )
                self.schedule = []
                self._stops_fired = 0
        return traversed

    def _fire_stop(
        self,
        stop: Stop,
        t: float,
        on_pickup: Callable[["Taxi", RideRequest, float], None] | None,
        on_dropoff: Callable[["Taxi", RideRequest, float], None] | None,
    ) -> None:
        rid = stop.request.request_id
        if stop.kind is StopKind.PICKUP:
            request = self.assigned.pop(rid, None)
            if request is None:
                raise TaxiError(f"pick-up fired for unassigned request {rid}")
            self.onboard[rid] = request
            self._assigned_pax -= request.num_passengers
            self._onboard_pax += request.num_passengers
            if self.occupancy > self.capacity:
                raise TaxiError(f"taxi {self.taxi_id} over capacity after pick-up {rid}")
            if on_pickup is not None:
                on_pickup(self, request, t)
        else:
            request = self.onboard.pop(rid, None)
            if request is None:
                raise TaxiError(f"drop-off fired for request {rid} not onboard")
            self._onboard_pax -= request.num_passengers
            if on_dropoff is not None:
                on_dropoff(self, request, t)

    def pending_stops(self) -> list[Stop]:
        """Stops not yet executed, in order."""
        return self.schedule[self._stops_fired:]

    def remaining_route_cost(self, from_time: float) -> float:
        """Travel time still ahead on the current route, measured from
        ``from_time`` (the planning time).  This is the ``cost(R_tj)``
        term in the detour-cost definition (Eq. 4).  A passenger-less
        cruise route counts as zero: abandoning it costs nothing."""
        if not self.schedule:
            return 0.0
        route = self.route
        if self._route_cursor >= len(route.nodes):
            return 0.0
        return max(0.0, route.end_time - from_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Taxi(id={self.taxi_id}, loc={self.loc}, onboard={len(self.onboard)}, "
            f"assigned={len(self.assigned)}, stops={len(self.pending_stops())})"
        )


@dataclass
class FleetLog:
    """Per-request service records accumulated during a simulation."""

    trips: dict[int, ServedTrip] = field(default_factory=dict)

    def record_assignment(self, request: RideRequest, taxi_id: int, assign_time: float) -> None:
        """Register a matched request (before pick-up)."""
        self.trips[request.request_id] = ServedTrip(
            request=request, taxi_id=taxi_id, assign_time=assign_time
        )

    def record_pickup(self, request: RideRequest, t: float) -> None:
        """Register the pick-up time of a matched request."""
        self.trips[request.request_id].pickup_time = t

    def record_dropoff(self, request: RideRequest, t: float) -> None:
        """Register the drop-off; fixes the shared travel cost."""
        trip = self.trips[request.request_id]
        trip.dropoff_time = t
        trip.shared_travel_cost = t - trip.pickup_time

    def completed(self) -> list[ServedTrip]:
        """Trips whose passengers reached their destination."""
        return [t for t in self.trips.values() if t.completed]
