"""Fleet substrate: taxi state, schedules, insertion machinery, route execution."""

from .insertion_dp import best_insertion_dp
from .schedule import (
    Stop,
    StopKind,
    arrival_times,
    capacity_ok,
    deadlines_met,
    dropoff,
    enumerate_insertions,
    is_feasible,
    pickup,
    request_stop_pair,
    schedule_cost,
    validate_stop_order,
)
from .taxi import FleetLog, PathFn, Taxi, TaxiError, TaxiRoute, build_route

__all__ = [
    "FleetLog",
    "best_insertion_dp",
    "PathFn",
    "Stop",
    "StopKind",
    "Taxi",
    "TaxiError",
    "TaxiRoute",
    "arrival_times",
    "build_route",
    "capacity_ok",
    "deadlines_met",
    "dropoff",
    "enumerate_insertions",
    "is_feasible",
    "pickup",
    "request_stop_pair",
    "schedule_cost",
    "validate_stop_order",
]
