"""Demand-learning rebalancing of idle taxis (proactive repositioning).

The paper's dispatcher is purely reactive: idle taxis sit where their
last drop-off left them (or cruise undirected in the non-peak
probabilistic mode), so a supply/demand-imbalanced workload — the
morning one-way commute surge — starves the deficit zones while surplus
zones hoard parked taxis.  This module closes that loop with the
hybrid demand-learning policy shape of Li & Allan (PAPERS.md): at a
configurable cadence the simulator censuses per-partition *supply*
(parked idle taxis) against *predicted near-future demand*
(:meth:`~repro.demand.prediction.DemandPredictor.rate_at_time` at
``now + lead_s``), and a small greedy transport assignment steers
surplus idle taxis onto passenger-less cruise routes toward the
landmark of each deficit partition.

Repositioning cruises are ordinary stop-less
:class:`~repro.fleet.taxi.TaxiRoute` plans, exactly like the non-peak
demand-seeking cruises: a cruising taxi stays ``idle`` (no pending
stops), its :meth:`~repro.fleet.taxi.Taxi.remaining_route_cost` is
zero, and the moment a real match installs a plan the cruise is torn
down for free.

Everything here is deterministic and effect-free: the planner is pure
arithmetic over the census and the predictor's fitted rates (no RNG,
no clock), so the simulator's ``rebalance.tick`` handler qualifies as
a REP101 purity root and rebalanced runs stay bit-reproducible.

The CLI grammar (``--rebalance cadence_s=120,max_moves=8,...``) is
parsed by :func:`parse_rebalance_spec`.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..demand.prediction import DemandPredictor
from ..network.graph import RoadNetwork
from ..network.landmarks import LandmarkGraph
from ..network.shortest_path import ShortestPathEngine
from .taxi import TaxiRoute

__all__ = [
    "RebalanceMove",
    "RebalanceSpec",
    "Rebalancer",
    "format_rebalance_spec",
    "parse_rebalance_spec",
]

#: Field -> parser for the ``--rebalance`` key=value grammar.
_SPEC_FIELDS: dict[str, type] = {
    "cadence_s": float,
    "lead_s": float,
    "max_moves": int,
    "min_surplus": int,
    "max_cruise_s": float,
}


@dataclass(frozen=True, slots=True)
class RebalanceSpec:
    """Everything that determines the repositioning policy, hashable.

    Attributes
    ----------
    cadence_s:
        Repositioning cadence: ``rebalance.tick`` boundaries sit on the
        absolute ``cadence_s`` grid (armed by request releases, so the
        tick sequence is a function of the workload alone).  ``0``
        disables rebalancing entirely.
    lead_s:
        How far ahead demand is predicted: the census compares supply
        against the predictor's rates at ``now + lead_s``, so taxis
        start moving *before* the surge arrives.
    max_moves:
        Upper bound on repositioning cruises installed per tick; keeps
        any single tick from emptying a partition.  ``0`` disables.
    min_surplus:
        A partition donates taxis only while it keeps at least its own
        predicted target plus this safety margin.
    max_cruise_s:
        Donors farther than this (landmark-to-landmark travel seconds)
        from a deficit partition are not sent — a cruise that long
        would arrive after the predicted surge.
    """

    cadence_s: float = 120.0
    lead_s: float = 300.0
    max_moves: int = 8
    min_surplus: int = 1
    max_cruise_s: float = 900.0

    def __post_init__(self) -> None:
        if self.cadence_s < 0:
            raise ValueError("cadence_s must be non-negative")
        if self.lead_s < 0:
            raise ValueError("lead_s must be non-negative")
        if self.max_moves < 0:
            raise ValueError("max_moves must be non-negative")
        if self.min_surplus < 0:
            raise ValueError("min_surplus must be non-negative")
        if self.max_cruise_s <= 0:
            raise ValueError("max_cruise_s must be positive")

    @property
    def enabled(self) -> bool:
        """Whether this spec can reposition any taxi at all."""
        return self.cadence_s > 0.0 and self.max_moves > 0


def parse_rebalance_spec(text: str) -> RebalanceSpec:
    """Parse the ``--rebalance`` grammar: ``key=value[,key=value...]``.

    Recognised keys are exactly the :class:`RebalanceSpec` fields, e.g.
    ``"cadence_s=120,lead_s=300,max_moves=8"``.  The words ``"on"``
    (and an empty string) yield the default *enabled* spec; ``"off"``
    yields a disabled one.
    """
    stripped = text.strip().lower()
    if stripped in ("", "on", "default"):
        return RebalanceSpec()
    if stripped == "off":
        return RebalanceSpec(cadence_s=0.0)
    values: dict[str, int | float] = {}
    for part in filter(None, (p.strip() for p in text.split(","))):
        key, sep, raw = part.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(f"expected key=value, got {part!r}")
        parser = _SPEC_FIELDS.get(key)
        if parser is None:
            known = ", ".join(sorted(_SPEC_FIELDS))
            raise ValueError(f"unknown rebalance key {key!r}; known keys: {known}")
        try:
            values[key] = parser(raw.strip())
        except ValueError as exc:
            raise ValueError(f"bad value for {key!r}: {raw.strip()!r}") from exc
    return RebalanceSpec(**values)  # type: ignore[arg-type]


def format_rebalance_spec(spec: RebalanceSpec) -> str:
    """The spec as a ``--rebalance`` string (non-default fields only)."""
    default = RebalanceSpec()
    parts = []
    for name in _SPEC_FIELDS:
        value = getattr(spec, name)
        if value != getattr(default, name):
            parts.append(f"{name}={value:g}" if isinstance(value, float) else f"{name}={value}")
    return ",".join(parts) if parts else "on"


@dataclass(frozen=True, slots=True)
class RebalanceMove:
    """One planned repositioning: a taxi sent towards a deficit zone."""

    taxi_id: int
    source: int
    target: int
    cost_s: float


class Rebalancer:
    """Plans repositioning moves and builds their cruise routes.

    The object is stateless across ticks: every decision is a pure
    function of the census the simulator hands it, the spec, and the
    fitted demand rates — which is what keeps rebalanced runs
    deterministic and lets the ``rebalance.tick`` handler sit among
    the REP101 purity roots.
    """

    def __init__(
        self,
        spec: RebalanceSpec,
        predictor: DemandPredictor,
        landmarks: LandmarkGraph,
        engine: ShortestPathEngine,
        network: RoadNetwork,
    ) -> None:
        self._spec = spec
        self._predictor = predictor
        self._landmarks = landmarks
        self._engine = engine
        self._network = network

    # ------------------------------------------------------------------
    @property
    def spec(self) -> RebalanceSpec:
        """The policy parameters."""
        return self._spec

    @property
    def landmarks(self) -> LandmarkGraph:
        """The partition/landmark geometry the policy plans over."""
        return self._landmarks

    def partition_of(self, vertex: int) -> int:
        """The partition a vertex belongs to (census helper)."""
        return self._landmarks.partition_of(vertex)

    # ------------------------------------------------------------------
    def plan_moves(
        self,
        supply: Mapping[int, Sequence[int]],
        in_flight: Mapping[int, int],
        now: float,
    ) -> list[RebalanceMove]:
        """Greedy transport assignment from surplus to deficit zones.

        Parameters
        ----------
        supply:
            Parked idle taxis per partition (each value sorted by id).
        in_flight:
            Repositioning cruises already under way, counted toward
            their *target* partition so a deficit is never over-served
            across consecutive ticks.
        now:
            The tick instant; demand is read at ``now + lead_s``.

        The assignment is deliberately greedy rather than an exact
        transport solve: deficits are served in severity order, each
        unit from the nearest partition still holding spare taxis
        (ties break on the lower partition id, then the lower taxi
        id), which is deterministic and linear in the move budget.
        """
        spec = self._spec
        horizon = now + spec.lead_s
        kappa = self._landmarks.num_partitions
        rates = [self._predictor.rate_at_time(p, horizon) for p in range(kappa)]
        total_rate = sum(rates)
        parked = sum(len(ids) for ids in supply.values())
        if total_rate <= 0.0 or parked == 0:
            return []
        # Proportional targets over the whole idle pool (parked plus
        # already-moving): partition p "deserves" its demand share.
        pool = parked + sum(in_flight.values())
        targets = [pool * rate / total_rate for rate in rates]
        deficits: list[tuple[float, int]] = []
        donors: dict[int, list[int]] = {}
        for p in range(kappa):
            here = list(supply.get(p, ()))
            have = len(here) + in_flight.get(p, 0)
            gap = targets[p] - have
            if gap >= 1.0:
                deficits.append((gap, p))
                continue
            keep = int(math.ceil(max(targets[p] - in_flight.get(p, 0), 0.0)))
            spare = len(here) - keep - spec.min_surplus + 1
            if spare >= 1:
                # Donate from the tail of the id-sorted parked list so
                # the donated set is deterministic.
                donors[p] = sorted(here)[len(here) - spare:]
        if not deficits or not donors:
            return []
        deficits.sort(key=lambda item: (-item[0], item[1]))
        moves: list[RebalanceMove] = []
        for gap, target in deficits:
            want = int(gap)
            while want > 0 and len(moves) < spec.max_moves:
                best: tuple[float, int] | None = None
                for source in sorted(donors):
                    cost = float(self._landmarks.landmark_cost(source, target))
                    if cost > spec.max_cruise_s:
                        continue
                    if best is None or (cost, source) < best:
                        best = (cost, source)
                if best is None:
                    break  # no donor close enough to help this zone
                cost, source = best
                taxi_id = donors[source].pop(0)
                if not donors[source]:
                    del donors[source]
                moves.append(
                    RebalanceMove(taxi_id=taxi_id, source=source, target=target, cost_s=cost)
                )
                want -= 1
                if not donors:
                    return moves
            if len(moves) >= spec.max_moves:
                break
        return moves

    def cruise_route(
        self, start_node: int, start_time: float, partition: int
    ) -> TaxiRoute | None:
        """A stop-less cruise from ``start_node`` to a partition's landmark.

        Returns ``None`` when the taxi is already at the landmark or no
        path exists; the route's times follow the network's constant
        speed, so abandoning it mid-way leaves the taxi at a well-timed
        vertex like any other plan.
        """
        target = self._landmarks.landmark(partition)
        if target == start_node:
            return None
        path = self._engine.path(start_node, target)
        if len(path) < 2:
            return None
        times = [start_time]
        t = start_time
        for u, v in zip(path, path[1:]):
            t += self._network.path_cost_s([u, v])
            times.append(t)
        return TaxiRoute(nodes=[int(n) for n in path], times=times, stop_positions=[])
