"""Taxi schedules (Definition 4) and insertion feasibility machinery.

A taxi schedule is a sequence of *stops* — pick-up or drop-off events at
road vertices, each with a deadline inherited from its request.  All
ridesharing schemes in the paper share the same scheduling primitive:
insert the new request's pick-up and drop-off into the existing stop
sequence *without reordering it* (Section IV-C2), then test the
resulting schedule against every passenger's deadline and the taxi's
capacity.  This module implements stops, insertion enumeration, and the
feasibility checks; routing (how inter-stop costs are obtained) is
supplied by the caller as a cost function, so the same machinery serves
basic routing, probabilistic routing and the grid-based baselines.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass

from ..demand.request import RideRequest


class StopKind(enum.Enum):
    """Whether a stop picks up or drops off its request's passengers."""

    PICKUP = "pickup"
    DROPOFF = "dropoff"


@dataclass(frozen=True, slots=True)
class Stop:
    """One schedule event: pick up or drop off a request at a vertex."""

    kind: StopKind
    request: RideRequest

    @property
    def node(self) -> int:
        """The road vertex where this stop happens."""
        if self.kind is StopKind.PICKUP:
            return self.request.origin
        return self.request.destination

    @property
    def deadline(self) -> float:
        """Latest admissible service time for this stop."""
        if self.kind is StopKind.PICKUP:
            return self.request.pickup_deadline
        return self.request.deadline

    @property
    def passenger_delta(self) -> int:
        """Occupancy change when this stop executes."""
        if self.kind is StopKind.PICKUP:
            return self.request.num_passengers
        return -self.request.num_passengers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stop({self.kind.value}, r{self.request.request_id}@{self.node})"


def pickup(request: RideRequest) -> Stop:
    """Convenience constructor for a pick-up stop."""
    return Stop(StopKind.PICKUP, request)


def dropoff(request: RideRequest) -> Stop:
    """Convenience constructor for a drop-off stop."""
    return Stop(StopKind.DROPOFF, request)


def request_stop_pair(request: RideRequest) -> tuple[Stop, Stop]:
    """The (pick-up, drop-off) stop pair of a request."""
    return pickup(request), dropoff(request)


CostFn = Callable[[int, int], float]


def enumerate_insertions(
    stops: Sequence[Stop],
    request: RideRequest,
) -> Iterator[tuple[int, int, list[Stop]]]:
    """All schedule instances inserting ``request`` into ``stops``.

    Yields ``(i, j, new_stops)`` where the pick-up is inserted at index
    ``i`` and the drop-off ends up at index ``j > i`` of the new list.
    The relative order of the existing stops is preserved, exactly as
    the paper (and T-Share, pGreedyDP) prescribe, giving
    ``(m + 1)(m + 2) / 2`` instances for an ``m``-stop schedule.
    """
    pu, do = request_stop_pair(request)
    m = len(stops)
    for i in range(m + 1):
        for j in range(i, m + 1):
            new_stops = list(stops[:i])
            new_stops.append(pu)
            new_stops.extend(stops[i:j])
            new_stops.append(do)
            new_stops.extend(stops[j:])
            yield i, j + 1, new_stops


def arrival_times(
    start_node: int,
    start_time: float,
    stops: Sequence[Stop],
    cost_fn: CostFn,
) -> list[float]:
    """Service time of each stop when travelling via ``cost_fn``.

    ``cost_fn(u, v)`` must return the travel time in seconds between two
    vertices (typically the shortest-path cost; probabilistic routing
    substitutes its own).  Unreachable legs yield ``inf`` arrivals.
    """
    times: list[float] = []
    node = start_node
    t = start_time
    for stop in stops:
        t = t + cost_fn(node, stop.node)
        node = stop.node
        times.append(t)
    return times


def deadlines_met(
    stops: Sequence[Stop],
    times: Sequence[float],
    slack_s: float = 1e-9,
) -> bool:
    """Whether every stop is served no later than its deadline."""
    return all(t <= stop.deadline + slack_s for stop, t in zip(stops, times))


def capacity_ok(
    stops: Sequence[Stop],
    initial_onboard: int,
    capacity: int,
) -> bool:
    """Whether occupancy stays within ``capacity`` along the schedule.

    ``initial_onboard`` is the number of passengers already in the taxi
    when the schedule starts (their drop-offs appear in ``stops``).
    """
    onboard = initial_onboard
    for stop in stops:
        onboard += stop.passenger_delta
        if onboard > capacity:
            return False
        if onboard < 0:
            raise ValueError("schedule drops off passengers that were never aboard")
    return True


def schedule_cost(
    start_node: int,
    start_time: float,
    stops: Sequence[Stop],
    cost_fn: CostFn,
) -> float:
    """Total travel time (seconds) to execute ``stops`` from the start."""
    times = arrival_times(start_node, start_time, stops, cost_fn)
    return (times[-1] - start_time) if times else 0.0


def is_feasible(
    start_node: int,
    start_time: float,
    stops: Sequence[Stop],
    cost_fn: CostFn,
    initial_onboard: int,
    capacity: int,
) -> bool:
    """Combined deadline + capacity feasibility of a schedule instance."""
    if not capacity_ok(stops, initial_onboard, capacity):
        return False
    times = arrival_times(start_node, start_time, stops, cost_fn)
    return deadlines_met(stops, times)


def validate_stop_order(stops: Sequence[Stop]) -> None:
    """Assert structural sanity: each drop-off follows its pick-up and no
    request appears twice in the same role.

    Pick-ups without a drop-off (or vice versa, for onboard passengers)
    are allowed; pairing is only checked when both stops are present.
    """
    picked: set[int] = set()
    dropped: set[int] = set()
    for stop in stops:
        rid = stop.request.request_id
        if stop.kind is StopKind.PICKUP:
            if rid in picked:
                raise ValueError(f"request {rid} has two pick-ups")
            picked.add(rid)
        else:
            if rid in dropped:
                raise ValueError(f"request {rid} has two drop-offs")
            if rid in picked or rid not in picked and rid not in dropped:
                # A drop-off with no preceding pick-up is legal only for
                # passengers already onboard; the caller knows which
                # those are, so only the double-event cases are errors.
                pass
            dropped.add(rid)
    for stop in stops:
        rid = stop.request.request_id
        if stop.kind is StopKind.DROPOFF and rid in picked:
            # ensure order: pick-up index < drop-off index
            pu_idx = next(
                i for i, s in enumerate(stops)
                if s.kind is StopKind.PICKUP and s.request.request_id == rid
            )
            do_idx = next(
                i for i, s in enumerate(stops)
                if s.kind is StopKind.DROPOFF and s.request.request_id == rid
            )
            if do_idx < pu_idx:
                raise ValueError(f"request {rid} is dropped off before pick-up")
