"""Taxi schedules (Definition 4) and insertion feasibility machinery.

A taxi schedule is a sequence of *stops* — pick-up or drop-off events at
road vertices, each with a deadline inherited from its request.  All
ridesharing schemes in the paper share the same scheduling primitive:
insert the new request's pick-up and drop-off into the existing stop
sequence *without reordering it* (Section IV-C2), then test the
resulting schedule against every passenger's deadline and the taxi's
capacity.  This module implements stops, insertion enumeration, and the
feasibility checks; routing (how inter-stop costs are obtained) is
supplied by the caller as a cost function, so the same machinery serves
basic routing, probabilistic routing and the grid-based baselines.

:func:`evaluate_insertions` is the *batched* form of the primitive: it
evaluates every ``(i, j)`` insertion instance of one candidate at once
with numpy array kernels — arrival vectors via one cached cost-matrix
gather plus a cumulative sum, capacity profiles and deadline masks as
elementwise comparisons — producing bit-identical costs and feasibility
verdicts to the scalar enumeration it replaces on the matching hot
path (which is retained as the reference the kernel tests diff
against).
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..demand.request import RideRequest

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..network.shortest_path import ShortestPathEngine


class StopKind(enum.Enum):
    """Whether a stop picks up or drops off its request's passengers."""

    PICKUP = "pickup"
    DROPOFF = "dropoff"


@dataclass(frozen=True, slots=True)
class Stop:
    """One schedule event: pick up or drop off a request at a vertex."""

    kind: StopKind
    request: RideRequest

    @property
    def node(self) -> int:
        """The road vertex where this stop happens."""
        if self.kind is StopKind.PICKUP:
            return self.request.origin
        return self.request.destination

    @property
    def deadline(self) -> float:
        """Latest admissible service time for this stop."""
        if self.kind is StopKind.PICKUP:
            return self.request.pickup_deadline
        return self.request.deadline

    @property
    def passenger_delta(self) -> int:
        """Occupancy change when this stop executes."""
        if self.kind is StopKind.PICKUP:
            return self.request.num_passengers
        return -self.request.num_passengers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stop({self.kind.value}, r{self.request.request_id}@{self.node})"


def pickup(request: RideRequest) -> Stop:
    """Convenience constructor for a pick-up stop."""
    return Stop(StopKind.PICKUP, request)


def dropoff(request: RideRequest) -> Stop:
    """Convenience constructor for a drop-off stop."""
    return Stop(StopKind.DROPOFF, request)


def request_stop_pair(request: RideRequest) -> tuple[Stop, Stop]:
    """The (pick-up, drop-off) stop pair of a request."""
    return pickup(request), dropoff(request)


def remove_request_stops(stops: Sequence[Stop], request_id: int) -> list[Stop]:
    """A copy of ``stops`` without the given request's stops.

    Used when a passenger cancels pre-pickup: the relative order of
    everyone else's stops is preserved, and by the triangle inequality
    dropping stops can only shorten the remaining arrivals, so a
    feasible schedule stays feasible.
    """
    return [s for s in stops if s.request.request_id != request_id]


CostFn = Callable[[int, int], float]


def enumerate_insertions(
    stops: Sequence[Stop],
    request: RideRequest,
) -> Iterator[tuple[int, int, list[Stop]]]:
    """All schedule instances inserting ``request`` into ``stops``.

    Yields ``(i, j, new_stops)`` where the pick-up is inserted at index
    ``i`` and the drop-off ends up at index ``j > i`` of the new list.
    The relative order of the existing stops is preserved, exactly as
    the paper (and T-Share, pGreedyDP) prescribe, giving
    ``(m + 1)(m + 2) / 2`` instances for an ``m``-stop schedule.
    """
    pu, do = request_stop_pair(request)
    m = len(stops)
    for i in range(m + 1):
        for j in range(i, m + 1):
            new_stops = list(stops[:i])
            new_stops.append(pu)
            new_stops.extend(stops[i:j])
            new_stops.append(do)
            new_stops.extend(stops[j:])
            yield i, j + 1, new_stops


def arrival_times(
    start_node: int,
    start_time: float,
    stops: Sequence[Stop],
    cost_fn: CostFn,
) -> list[float]:
    """Service time of each stop when travelling via ``cost_fn``.

    ``cost_fn(u, v)`` must return the travel time in seconds between two
    vertices (typically the shortest-path cost; probabilistic routing
    substitutes its own).  Unreachable legs yield ``inf`` arrivals.
    """
    times: list[float] = []
    node = start_node
    t = start_time
    for stop in stops:
        t = t + cost_fn(node, stop.node)
        node = stop.node
        times.append(t)
    return times


def deadlines_met(
    stops: Sequence[Stop],
    times: Sequence[float],
    slack_s: float = 1e-9,
) -> bool:
    """Whether every stop is served no later than its deadline."""
    return all(t <= stop.deadline + slack_s for stop, t in zip(stops, times))


def capacity_ok(
    stops: Sequence[Stop],
    initial_onboard: int,
    capacity: int,
) -> bool:
    """Whether occupancy stays within ``capacity`` along the schedule.

    ``initial_onboard`` is the number of passengers already in the taxi
    when the schedule starts (their drop-offs appear in ``stops``).
    """
    onboard = initial_onboard
    for stop in stops:
        onboard += stop.passenger_delta
        if onboard > capacity:
            return False
        if onboard < 0:
            raise ValueError("schedule drops off passengers that were never aboard")
    return True


def schedule_cost(
    start_node: int,
    start_time: float,
    stops: Sequence[Stop],
    cost_fn: CostFn,
) -> float:
    """Total travel time (seconds) to execute ``stops`` from the start."""
    times = arrival_times(start_node, start_time, stops, cost_fn)
    return (times[-1] - start_time) if times else 0.0


def is_feasible(
    start_node: int,
    start_time: float,
    stops: Sequence[Stop],
    cost_fn: CostFn,
    initial_onboard: int,
    capacity: int,
) -> bool:
    """Combined deadline + capacity feasibility of a schedule instance."""
    if not capacity_ok(stops, initial_onboard, capacity):
        return False
    times = arrival_times(start_node, start_time, stops, cost_fn)
    return deadlines_met(stops, times)


def validate_stop_order(stops: Sequence[Stop]) -> None:
    """Assert structural sanity: each drop-off follows its pick-up and no
    request appears twice in the same role.

    Pick-ups without a drop-off (or vice versa, for onboard passengers)
    are allowed; pairing is only checked when both stops are present.
    """
    picked: set[int] = set()
    dropped: set[int] = set()
    for stop in stops:
        rid = stop.request.request_id
        if stop.kind is StopKind.PICKUP:
            if rid in picked:
                raise ValueError(f"request {rid} has two pick-ups")
            picked.add(rid)
        else:
            if rid in dropped:
                raise ValueError(f"request {rid} has two drop-offs")
            if rid in picked or rid not in picked and rid not in dropped:
                # A drop-off with no preceding pick-up is legal only for
                # passengers already onboard; the caller knows which
                # those are, so only the double-event cases are errors.
                pass
            dropped.add(rid)
    for stop in stops:
        rid = stop.request.request_id
        if stop.kind is StopKind.DROPOFF and rid in picked:
            # ensure order: pick-up index < drop-off index
            pu_idx = next(
                i for i, s in enumerate(stops)
                if s.kind is StopKind.PICKUP and s.request.request_id == rid
            )
            do_idx = next(
                i for i, s in enumerate(stops)
                if s.kind is StopKind.DROPOFF and s.request.request_id == rid
            )
            if do_idx < pu_idx:
                raise ValueError(f"request {rid} is dropped off before pick-up")


# ----------------------------------------------------------------------
# batched insertion evaluation (the matching hot-path kernel)
# ----------------------------------------------------------------------
#: Per-m instance grids (pickup index, dropoff index, position map).
#: They depend only on the pending-stop count, so one build serves the
#: whole run.
_GRID_CACHE: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}


def _insertion_grid(m: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The ``(ii, jj, seq)`` instance grid for an ``m``-stop schedule.

    ``seq[r, s]`` names which *extended* stop (``0..m-1`` original, ``m``
    pick-up, ``m+1`` drop-off) sits at position ``s`` of instance ``r``'s
    new stop list; rows are in :func:`enumerate_insertions` order
    (pick-up index ascending, then drop-off index).
    """
    cached = _GRID_CACHE.get(m)
    if cached is None:
        ii, jj = np.triu_indices(m + 1)
        col_i = ii[:, None]
        col_j = jj[:, None]
        pos = np.arange(m + 2)[None, :]
        seq = np.where(
            pos < col_i,
            pos,
            np.where(
                pos == col_i,
                m,
                np.where(pos <= col_j, pos - 1, np.where(pos == col_j + 1, m + 1, pos - 2)),
            ),
        )
        cached = (ii, jj, seq)
        _GRID_CACHE[m] = cached  # repro-lint: disable=REP101 reason=pure memo keyed by stop count; value depends only on m
    return cached


@dataclass(frozen=True, slots=True)
class InsertionBatch:
    """Every insertion instance of one candidate, evaluated as arrays.

    Rows are ordered exactly like :func:`enumerate_insertions` (pick-up
    index ascending, then drop-off index), so ``argmin`` over the
    feasible detours reproduces the scalar loop's first-minimum tie
    handling.
    """

    #: Pick-up insertion index of each instance (``i`` of the scalar
    #: enumeration).
    pickup_idx: np.ndarray
    #: Drop-off index in the *new* stop list (``j`` of the enumeration).
    dropoff_idx: np.ndarray
    #: Service time of the last stop of each instance (``inf`` when a
    #: leg is unreachable).
    last_arrival: np.ndarray
    #: Deadline *and* capacity feasibility of each instance.
    feasible: np.ndarray
    _seq: np.ndarray
    _ext_stops: tuple[Stop, ...]

    @property
    def size(self) -> int:
        """Number of instances evaluated: ``(m + 1)(m + 2) / 2``."""
        return int(self.pickup_idx.size)

    def stops_for(self, k: int) -> list[Stop]:
        """Materialise the stop sequence of instance ``k``."""
        return [self._ext_stops[int(e)] for e in self._seq[k]]


@dataclass(frozen=True, slots=True)
class GroupedInsertionBatch:
    """Insertion instances of *several* candidates with equal ``m``.

    ``last_arrival`` and ``feasible`` are ``(T, R)`` arrays — one row
    per candidate, one column per insertion instance, columns in
    :func:`enumerate_insertions` order.  Matching evaluates a whole
    dispatch's candidate set with a handful of these (one per distinct
    pending-schedule length) instead of one kernel call per taxi.
    """

    pickup_idx: np.ndarray
    dropoff_idx: np.ndarray
    last_arrival: np.ndarray
    feasible: np.ndarray
    _seq: np.ndarray
    _pendings: tuple[tuple[Stop, ...], ...]
    _pair: tuple[Stop, Stop]

    @property
    def size(self) -> int:
        """Total instances evaluated: ``T * (m + 1)(m + 2) / 2``."""
        return int(self.feasible.size)

    def ext_stops(self, t: int) -> tuple[Stop, ...]:
        """Candidate ``t``'s extended stop tuple (pending + pair)."""
        return self._pendings[t] + self._pair

    def stops_for(self, t: int, k: int) -> list[Stop]:
        """Materialise instance ``k`` of candidate ``t``."""
        ext = self.ext_stops(t)
        return [ext[int(e)] for e in self._seq[k]]


def evaluate_insertions_grouped(
    engine: ShortestPathEngine,
    start_nodes: Sequence[int],
    start_times: Sequence[float],
    pendings: Sequence[Sequence[Stop]],
    request: RideRequest,
    initial_onboards: Sequence[int],
    capacities: Sequence[int],
    slack_s: float = 1e-9,
) -> GroupedInsertionBatch:
    """Batched Algorithm-1 evaluation for ``T`` candidates sharing ``m``.

    Every candidate must have the same pending-stop count ``m`` (the
    caller groups by it).  For all ``T * (m + 1)(m + 2) / 2`` insertion
    instances at once this computes the arrival-time vectors (one cached
    cost-matrix gather over the involved vertices plus a cumulative sum,
    which accumulates left to right exactly like the scalar
    :func:`arrival_times` loop), the occupancy profiles, and the
    deadline masks.  Costs, feasibility verdicts and the implied
    minimum-detour choices are bit-identical to driving
    :func:`enumerate_insertions` through :func:`arrival_times` /
    :func:`capacity_ok` / :func:`deadlines_met` per taxi and instance.

    ``engine`` is a :class:`~repro.network.shortest_path.ShortestPathEngine`
    (anything with ``cost_matrix``).
    """
    pu, do = request_stop_pair(request)
    pendings = tuple(tuple(p) for p in pendings)
    t_count = len(pendings)
    m = len(pendings[0])
    ii, jj, seq = _insertion_grid(m)
    r_count = ii.size

    if m == 0:
        # Idle candidates (the bulk of every dispatch) admit exactly one
        # instance: pick-up then drop-off.  Two cost gathers and a few
        # elementwise ops replace the general instance machinery; the
        # arithmetic (sequential adds, same cost table entries) is the
        # same, so results stay bit-identical.
        if any(pendings):
            raise ValueError("grouped candidates must share the pending-stop count")
        srcs = np.empty(t_count + 1, dtype=np.int64)
        srcs[:t_count] = start_nodes
        srcs[t_count] = pu.node
        ctab = engine.cost_matrix(srcs, [pu.node, do.node])
        t_pu = np.asarray(start_times, dtype=np.float64) + ctab[:t_count, 0]
        t_do = t_pu + ctab[t_count, 1]
        onboard = np.asarray(initial_onboards, dtype=np.int64)
        cap = np.asarray(capacities, dtype=np.int64)
        occ_pu = onboard + pu.passenger_delta
        occ_do = occ_pu + do.passenger_delta
        over_pu = occ_pu > cap
        over_do = occ_do > cap
        if ((occ_pu < 0) | ((occ_do < 0) & ~over_pu)).any():
            raise ValueError("schedule drops off passengers that were never aboard")
        cap_ok = ~(over_pu | over_do)
        dead_ok = (t_pu <= pu.deadline + slack_s) & (t_do <= do.deadline + slack_s)
        return GroupedInsertionBatch(
            pickup_idx=ii,
            dropoff_idx=jj + 1,
            last_arrival=t_do[:, None],
            feasible=(cap_ok & dead_ok)[:, None],
            _seq=seq,
            _pendings=pendings,
            _pair=(pu, do),
        )

    # Global vertex list: candidate starts, then each candidate's
    # pending stops, then the shared pick-up/drop-off pair.
    nodes = np.empty(t_count * (m + 1) + 2, dtype=np.int64)
    nodes[:t_count] = start_nodes
    ext_dead = np.empty((t_count, m + 2), dtype=np.float64)
    ext_delta = np.empty((t_count, m + 2), dtype=np.int64)
    for t, pending in enumerate(pendings):
        if len(pending) != m:
            raise ValueError("grouped candidates must share the pending-stop count")
        base = t_count + t * m
        for k, stop in enumerate(pending):
            nodes[base + k] = stop.node
            ext_dead[t, k] = stop.deadline
            ext_delta[t, k] = stop.passenger_delta
    pair_base = t_count + t_count * m
    nodes[pair_base] = pu.node
    nodes[pair_base + 1] = do.node
    ext_dead[:, m] = pu.deadline
    ext_dead[:, m + 1] = do.deadline
    ext_delta[:, m] = pu.passenger_delta
    ext_delta[:, m + 1] = do.passenger_delta

    # One cached cost-matrix gather covers every leg of every instance
    # of every candidate.
    ctab = engine.cost_matrix(nodes, nodes)

    # ext_map[t, e]: global position of candidate t's extended stop e.
    ext_map = np.empty((t_count, m + 2), dtype=np.int64)
    if m:
        ext_map[:, :m] = t_count + m * np.arange(t_count)[:, None] + np.arange(m)[None, :]
    ext_map[:, m] = pair_base
    ext_map[:, m + 1] = pair_base + 1
    node_pos = ext_map[:, seq]  # (T, R, m + 2)
    prev_pos = np.empty_like(node_pos)
    prev_pos[:, :, 0] = np.arange(t_count)[:, None]
    prev_pos[:, :, 1:] = node_pos[:, :, :-1]

    acc = np.empty((t_count, r_count, m + 3), dtype=np.float64)
    acc[:, :, 0] = np.asarray(start_times, dtype=np.float64)[:, None]
    acc[:, :, 1:] = ctab[prev_pos, node_pos]
    times = np.cumsum(acc, axis=2)[:, :, 1:]

    deltas = ext_delta[:, seq]  # (T, R, m + 2)
    occupancy = np.asarray(initial_onboards, dtype=np.int64)[:, None, None] + np.cumsum(
        deltas, axis=2
    )
    over = occupancy > np.asarray(capacities, dtype=np.int64)[:, None, None]
    negative = occupancy < 0
    if negative.any():
        # The scalar loop raises when it reaches a negative occupancy
        # before any over-capacity stop of the same instance.
        prior_over = (np.cumsum(over, axis=2) - over) > 0
        if (negative & ~prior_over).any():
            raise ValueError("schedule drops off passengers that were never aboard")
    cap_ok = ~over.any(axis=2)
    dead_ok = (times <= ext_dead[:, seq] + slack_s).all(axis=2)

    return GroupedInsertionBatch(
        pickup_idx=ii,
        dropoff_idx=jj + 1,
        last_arrival=times[:, :, -1],
        feasible=cap_ok & dead_ok,
        _seq=seq,
        _pendings=pendings,
        _pair=(pu, do),
    )


def evaluate_insertions(
    engine: ShortestPathEngine,
    start_node: int,
    start_time: float,
    pending: Sequence[Stop],
    request: RideRequest,
    initial_onboard: int,
    capacity: int,
    slack_s: float = 1e-9,
) -> InsertionBatch:
    """Batched Algorithm-1 instance evaluation for one candidate taxi.

    The single-candidate view of :func:`evaluate_insertions_grouped`;
    bit-identical to the scalar :func:`enumerate_insertions` /
    :func:`arrival_times` / :func:`capacity_ok` / :func:`deadlines_met`
    reference path.
    """
    pending = tuple(pending)
    grouped = evaluate_insertions_grouped(
        engine,
        [start_node],
        [start_time],
        [pending],
        request,
        [initial_onboard],
        [capacity],
        slack_s,
    )
    return InsertionBatch(
        pickup_idx=grouped.pickup_idx,
        dropoff_idx=grouped.dropoff_idx,
        last_arrival=grouped.last_arrival[0],
        feasible=grouped.feasible[0],
        _seq=grouped._seq,
        _ext_stops=grouped.ext_stops(0),
    )


# ----------------------------------------------------------------------
# tight small-batch path
# ----------------------------------------------------------------------
# The array kernels above pay a fixed per-call numpy dispatch cost
# (~30 ops regardless of batch size), which dominates when a dispatch
# only evaluates a few dozen insertion instances.  Below that break-even
# the matcher uses this tight scalar walk over cached distance-row
# views instead; above it the grouped kernels win and keep winning as
# the batch grows.  Both produce the scalar reference's results bit for
# bit (the tests diff all three).

#: Per-m instance sequences as plain Python tuples, enumeration order.
_SEQ_TUPLE_CACHE: dict[int, list[tuple[int, int, tuple[int, ...]]]] = {}


def _insertion_sequences(m: int) -> list[tuple[int, int, tuple[int, ...]]]:
    """``(i, j, positions)`` per instance of an ``m``-stop schedule.

    ``positions`` names the extended stop (``0..m-1`` pending, ``m``
    pick-up, ``m+1`` drop-off) at each slot of the new stop list; rows
    follow :func:`enumerate_insertions` order.
    """
    cached = _SEQ_TUPLE_CACHE.get(m)
    if cached is None:
        ii, jj, seq = _insertion_grid(m)
        cached = [
            (int(i), int(j) + 1, tuple(int(e) for e in row))
            for i, j, row in zip(ii, jj, seq)
        ]
        _SEQ_TUPLE_CACHE[m] = cached  # repro-lint: disable=REP101 reason=pure memo keyed by stop count; value depends only on m
    return cached


def materialize_insertion(
    pending: Sequence[Stop], request: RideRequest, i: int, j: int
) -> list[Stop]:
    """The stop list of insertion instance ``(i, j)``.

    ``(i, j)`` follows the :func:`enumerate_insertions` convention:
    pick-up at index ``i``, drop-off at index ``j`` of the new list.
    Lets callers that only track winning indices (the batched and tight
    evaluation paths) build the one stop list they actually install.
    """
    pu, do = request_stop_pair(request)
    jo = j - 1
    out = list(pending[:i])
    out.append(pu)
    out.extend(pending[i:jo])
    out.append(do)
    out.extend(pending[jo:])
    return out


def score_insertions_tight(
    engine: ShortestPathEngine,
    starts: Sequence[tuple[int, float, Sequence[Stop], int, int]],
    request: RideRequest,
    slack_s: float = 1e-9,
) -> list[tuple[int, float, int, int]]:
    """Best feasible insertion per candidate via scalar distance-row reads.

    ``starts`` holds one ``(start_node, start_time, pending_stops,
    initial_onboard, capacity)`` tuple per candidate; the return value
    lists ``(index, last_arrival, i, j)`` for every candidate with a
    feasible instance, where ``(i, j)`` is the first minimum-arrival
    instance in :func:`enumerate_insertions` order — the instance
    :func:`evaluate_insertions` + ``argmin`` selects.  Arrival times
    accumulate left to right with the exact operations of
    :func:`arrival_times` over ``engine.cost``, capacity follows
    :func:`capacity_ok` (including its ``ValueError`` on impossible
    drop-offs), and deadlines follow :func:`deadlines_met`, so the
    verdicts are bit-identical to the scalar reference and to the
    array kernels.

    Distance rows are fetched once per distinct vertex and shared
    across the whole candidate set, so a small dispatch costs a few
    dozen ``row.item`` reads — no numpy call overhead at all.
    """
    pu, do = request_stop_pair(request)
    pu_node = pu.node
    do_node = do.node
    pu_dead = pu.deadline + slack_s
    do_dead = do.deadline + slack_s
    n_pass = request.num_passengers
    speed = engine.network.speed_mps
    dist_row = engine.dist_row
    row_cache: dict[int, np.ndarray] = {pu_node: dist_row(pu_node)}
    pu_row = row_cache[pu_node]
    inf = np.inf

    out: list[tuple[int, float, int, int]] = []
    for idx, (start_node, start_time, pending, onboard, capacity) in enumerate(starts):
        start_row = row_cache.get(start_node)
        if start_row is None:
            start_row = dist_row(start_node)
            row_cache[start_node] = start_row
        m = len(pending)

        if m == 0:
            # Idle candidate: the single pick-up-then-drop-off instance,
            # checked in ``capacity_ok`` order (over-capacity fails
            # before a negative occupancy can raise).
            occ = onboard + n_pass
            if occ > capacity:
                continue
            if occ < 0 or onboard < 0:
                raise ValueError("schedule drops off passengers that were never aboard")
            t = start_time + start_row.item(pu_node) / speed
            if t > pu_dead:
                continue
            t = t + pu_row.item(do_node) / speed
            if t > do_dead:
                continue
            out.append((idx, t, 0, 1))
            continue

        ext_nodes: list[int] = []
        ext_dead: list[float] = []
        ext_delta: list[int] = []
        rows: list[np.ndarray] = []
        # Capacity precheck while filling: any instance's occupancy
        # profile is the pending-only running occupancy, plus the
        # request's passengers over the pickup..dropoff span.  When the
        # peak with them aboard fits and no running value is negative,
        # every instance is capacity-feasible and the per-instance walk
        # can skip occupancy entirely — same verdicts, no ValueError
        # possible.
        run = onboard
        run_min = run
        run_max = run
        for stop in pending:
            v = stop.node
            ext_nodes.append(v)
            ext_dead.append(stop.deadline + slack_s)
            delta = stop.passenger_delta
            ext_delta.append(delta)
            row = row_cache.get(v)
            if row is None:
                row = dist_row(v)
                row_cache[v] = row
            rows.append(row)
            run += delta
            if run < run_min:
                run_min = run
            elif run > run_max:
                run_max = run
        ext_nodes.append(pu_node)
        ext_nodes.append(do_node)
        ext_dead.append(pu_dead)
        ext_dead.append(do_dead)
        ext_delta.append(n_pass)
        ext_delta.append(-n_pass)
        rows.append(pu_row)
        do_row = row_cache.get(do_node)
        if do_row is None:
            do_row = dist_row(do_node)
            row_cache[do_node] = do_row
        rows.append(do_row)
        cap_all_ok = run_min >= 0 and run_max + n_pass <= capacity

        best_last = inf
        best_i = -1
        best_j = -1
        for i, j, positions in _insertion_sequences(m):
            if not cap_all_ok:
                # Faithful scalar capacity walk (first over-capacity
                # stop fails the instance; a negative occupancy reached
                # before one raises, exactly like ``capacity_ok``).
                occ = onboard
                ok = True
                for p in positions:
                    occ += ext_delta[p]
                    if occ > capacity:
                        ok = False
                        break
                    if occ < 0:
                        raise ValueError(
                            "schedule drops off passengers that were never aboard"
                        )
                if not ok:
                    continue
            t = start_time
            row = start_row
            ok = True
            for p in positions:
                t = t + row.item(ext_nodes[p]) / speed
                if t > ext_dead[p]:
                    ok = False
                    break
                row = rows[p]
            if ok and t < best_last:
                best_last = t
                best_i = i
                best_j = j
        if best_i >= 0:
            out.append((idx, best_last, best_i, best_j))
    return out


def best_insertion_tight(
    engine: ShortestPathEngine,
    start_node: int,
    start_time: float,
    pending: Sequence[Stop],
    request: RideRequest,
    initial_onboard: int,
    capacity: int,
    slack_s: float = 1e-9,
) -> tuple[float, int, int] | None:
    """Single-candidate view of :func:`score_insertions_tight`.

    Returns ``(last_arrival, i, j)`` of the best feasible instance or
    ``None`` when no instance is feasible.
    """
    res = score_insertions_tight(
        engine,
        [(start_node, start_time, tuple(pending), initial_onboard, capacity)],
        request,
        slack_s,
    )
    if not res:
        return None
    _idx, last, i, j = res[0]
    return last, i, j
