"""The dynamic-programming insertion operator (Xu et al., ICDE'19).

pGreedyDP's name comes from computing each candidate taxi's optimal
insertion with dynamic programming instead of enumerating all
``(m+1)(m+2)/2`` schedule instances.  The key observation: with the
existing stop order fixed, the best drop-off position for a given
pick-up position ``i`` can be found in one backward sweep, because the
only coupling between positions is the accumulated delay each insertion
pushes onto later stops.

This module implements that operator in ``O(m^2)`` worst case with the
same pruning the original uses (abort a pick-up position as soon as its
delay already violates a later stop), against the enumeration's
``O(m^3)``.  Results are bit-identical to
:func:`repro.fleet.schedule.enumerate_insertions` + feasibility
filtering — the property-based tests assert exactly that — so either
implementation can back any scheme.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..demand.request import RideRequest
from .schedule import CostFn, Stop, dropoff, pickup


def _prefix_state(
    start_node: int,
    start_time: float,
    stops: Sequence[Stop],
    cost_fn: CostFn,
    capacity: int,
    initial_onboard: int,
) -> tuple[list[float], list[int]]:
    """Arrival time and occupancy *before* each position of the base
    schedule, plus validity of the base prefix."""
    m = len(stops)
    arrive = [0.0] * (m + 1)  # arrive[k]: time when leaving stop k-1
    onboard = [0] * (m + 1)
    arrive[0] = start_time
    onboard[0] = initial_onboard
    node = start_node
    t = start_time
    load = initial_onboard
    for k, stop in enumerate(stops):
        t = t + cost_fn(node, stop.node)
        node = stop.node
        load += stop.passenger_delta
        arrive[k + 1] = t
        onboard[k + 1] = load
    return arrive, onboard


def _slack_after(stops: Sequence[Stop], arrive: Sequence[float]) -> list[float]:
    """``slack[k]``: max delay insertable before stop ``k`` that keeps
    every stop ``>= k`` on deadline (assuming the base schedule)."""
    m = len(stops)
    slack = [float("inf")] * (m + 1)
    running = float("inf")
    for k in range(m - 1, -1, -1):
        running = min(running, stops[k].deadline - arrive[k + 1])
        slack[k] = running
    return slack


def best_insertion_dp(
    start_node: int,
    start_time: float,
    stops: Sequence[Stop],
    request: RideRequest,
    cost_fn: CostFn,
    capacity: int,
    initial_onboard: int = 0,
) -> tuple[float, list[Stop]] | None:
    """Optimal feasible insertion of ``request`` into ``stops``.

    Returns ``(detour_cost, new_stops)`` minimising the added travel
    time, or ``None`` when no feasible insertion exists.  Semantics
    match the exhaustive enumeration exactly: existing stop order is
    preserved, the pick-up precedes the drop-off, deadlines and
    capacity hold throughout.
    """
    m = len(stops)
    pax = request.num_passengers
    pu_node = request.origin
    do_node = request.destination
    nodes = [start_node] + [s.node for s in stops]

    arrive, onboard = _prefix_state(
        start_node, start_time, stops, cost_fn, capacity, initial_onboard
    )
    slack = _slack_after(stops, arrive)
    base_total = arrive[m] - start_time

    best_cost = float("inf")
    best_pair: tuple[int, int] | None = None

    for i in range(m + 1):
        # Capacity on boarding at position i.
        if onboard[i] + pax > capacity:
            continue
        prev = nodes[i]
        t_pick = arrive[i] + cost_fn(prev, pu_node)
        if t_pick > request.pickup_deadline + 1e-9:
            continue

        # Case j == i: drop off immediately after picking up.
        t_drop = t_pick + cost_fn(pu_node, do_node)
        if t_drop <= request.deadline + 1e-9:
            if i == m:
                detour = t_drop - arrive[m]
                if detour < best_cost - 1e-12:
                    best_cost = detour
                    best_pair = (i, i)
            else:
                nxt = nodes[i + 1]
                delay = (
                    t_drop + cost_fn(do_node, nxt) - arrive[i + 1]
                )
                if delay <= slack[i] + 1e-9 and delay < best_cost - 1e-12:
                    best_cost = delay
                    best_pair = (i, i)

        # Case j > i: the passenger rides along through stops i..j-1.
        # Track the delay injected by the pick-up alone and the time at
        # which the taxi reaches each subsequent stop with the rider.
        if i < m:
            nxt = nodes[i + 1]
            pick_delay = t_pick + cost_fn(pu_node, nxt) - arrive[i + 1]
            if pick_delay > slack[i] + 1e-9:
                continue  # later positions only get worse for this i
        else:
            continue  # i == m handled by the j == i case above

        t = t_pick
        node = pu_node
        for j in range(i, m):
            # Arrive at stop j with the rider aboard.
            t = t + cost_fn(node, stops[j].node)
            node = stops[j].node
            if t > stops[j].deadline + 1e-9:
                break
            if onboard[j + 1] + pax > capacity:
                break  # the rider cannot stay aboard past stop j
            # Try dropping off right after stop j (position j+1 in the
            # original indexing).
            t_drop = t + cost_fn(node, do_node)
            if t_drop <= request.deadline + 1e-9:
                if j + 1 == m:
                    detour = t_drop - arrive[m]
                    if detour < best_cost - 1e-12:
                        best_cost = detour
                        best_pair = (i, j + 1)
                else:
                    nxt = nodes[j + 2]
                    delay = t_drop + cost_fn(do_node, nxt) - arrive[j + 2]
                    if delay <= slack[j + 1] + 1e-9 and delay < best_cost - 1e-12:
                        best_cost = delay
                        best_pair = (i, j + 1)

    if best_pair is None:
        return None
    i, j = best_pair
    new_stops = list(stops[:i])
    new_stops.append(pickup(request))
    new_stops.extend(stops[i:j])
    new_stops.append(dropoff(request))
    new_stops.extend(stops[j:])
    # Recompute the exact detour for the returned schedule (the DP's
    # delta already equals it; this keeps the contract obvious).
    return best_cost, new_stops
